//! Explicit SIMD distance kernels with one-time runtime dispatch.
//!
//! Query cost in every index of this workspace is dominated by the four hot
//! distance shapes — f32 `squared_l2`, f32 `dot`, the SQ8 asymmetric l2 and
//! dot kernels — plus the IVFPQ ADC accumulation. This module provides
//! explicit `std::arch` implementations of those shapes (SSE2 and AVX2 on
//! x86-64, NEON on aarch64) behind a [`KernelTable`] of plain function
//! pointers, resolved **once per process** by [`kernels`] (honoring the
//! `NSG_SIMD` env override) and cached per query in
//! [`QueryScratch`](crate::store::QueryScratch) by `prepare_query`. The
//! per-candidate `dist_to` loop only ever calls through the already-resolved
//! pointers: no CPU-feature detection, no `OnceLock` access, no branch on
//! the level inside any hot path (rule R8 of the lint gate enforces this).
//!
//! # Bit-exactness contract
//!
//! Every ISA path produces **bitwise identical** results to the scalar
//! fallback, which doubles as the portable correctness oracle. That is not
//! free with SIMD — reassociating the reduction or contracting into FMA
//! changes rounding — so all kernels share one fixed dataflow:
//!
//! * the input is consumed in chunks of [`LANES`] *virtual lanes*; element
//!   `l` of each chunk is accumulated into virtual accumulator `l` with a
//!   multiply followed by a separate add (never FMA),
//! * the accumulators are reduced in a single fixed order ([`reduce`]),
//! * the sub-chunk remainder runs through one shared sequential tail.
//!
//! An ISA path is just a different register layout of the same virtual
//! lanes (AVX2: two 8-wide registers; SSE2/NEON: four 4-wide), so scalar
//! agreement is exact — the SIMD-vs-scalar proptests assert `==`, well
//! inside the documented 4-ULP budget.
//!
//! # Adding an ISA
//!
//! 1. Add a [`SimdLevel`] variant and a `cfg(target_arch)`-gated module with
//!    the five kernels, keeping the virtual-lane dataflow above.
//! 2. Build a `KernelTable` static for it; if the ISA is not a baseline
//!    feature of its target, expose the kernels as `unsafe fn` with
//!    `#[target_feature]` and wrap them in safe fns whose `// SAFETY:`
//!    comment cites the runtime detection in [`table_for`].
//! 3. Add the variant to [`table_for`] (gated on runtime detection),
//!    [`detected_level`], the `NSG_SIMD` parser, and [`SimdLevel::ALL`].
//!
//! The agreement proptests and the `simd-smoke` CI step then cover it on
//! any runner that supports it.

use std::fmt;
use std::sync::OnceLock;

/// Number of virtual accumulator lanes the f32 and SQ8 kernels use per
/// chunk. Chosen so AVX2 runs two independent 8-wide accumulators (enough
/// instruction-level parallelism to hide the add latency) while SSE2/NEON
/// run four 4-wide ones over the exact same virtual lanes.
pub const LANES: usize = 16;

/// Virtual lanes of the ADC kernel (one gather of 8 table entries on AVX2).
pub const ADC_LANES: usize = 8;

/// f32 kernel shape: `(a, b) -> scalar` over equal-length slices.
pub type F32Kernel = fn(&[f32], &[f32]) -> f32;
/// SQ8 asymmetric-l2 shape: `(prepared t, scale, codes) -> scalar`.
pub type Sq8L2Kernel = fn(&[f32], &[f32], &[u8]) -> f32;
/// SQ8 asymmetric-dot shape: `(prepared w, codes) -> scalar`.
pub type Sq8DotKernel = fn(&[f32], &[u8]) -> f32;
/// ADC accumulation shape: `(flat tables, width, codes) -> scalar`.
pub type AdcKernel = fn(&[f32], usize, &[u8]) -> f32;

/// Which instruction set a [`KernelTable`]'s entries are compiled for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SimdLevel {
    /// Portable fallback (and the correctness oracle every other level is
    /// proptested against). Still auto-vectorizable by LLVM.
    Scalar,
    /// 128-bit x86-64 baseline: available on every x86-64 CPU.
    Sse2,
    /// 256-bit x86-64 (requires runtime `avx2` + `fma` detection; the
    /// kernels deliberately avoid FMA contraction to stay bit-equal to
    /// scalar, but the level gates on the pair the deployment targets ship
    /// together).
    Avx2,
    /// 128-bit aarch64 baseline.
    Neon,
}

impl SimdLevel {
    /// Every level, in fallback order (used to enumerate the tables the
    /// running CPU supports).
    pub const ALL: [SimdLevel; 4] =
        [SimdLevel::Scalar, SimdLevel::Sse2, SimdLevel::Avx2, SimdLevel::Neon];

    /// The lowercase name `NSG_SIMD` accepts for this level.
    pub fn as_str(self) -> &'static str {
        match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Sse2 => "sse2",
            SimdLevel::Avx2 => "avx2",
            SimdLevel::Neon => "neon",
        }
    }
}

impl fmt::Display for SimdLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The five hot-shape kernels for one instruction set, as plain function
/// pointers so the per-candidate loop is a direct call with no trait object
/// and no feature branch.
#[derive(Clone, Copy)]
pub struct KernelTable {
    /// Instruction set the entries are compiled for.
    pub level: SimdLevel,
    /// `Σ (aᵢ - bᵢ)²`.
    pub squared_l2: F32Kernel,
    /// `Σ aᵢ·bᵢ`.
    pub dot: F32Kernel,
    /// `Σ (tᵢ - scaleᵢ·cᵢ)²` over a prepared SQ8 query.
    pub sq8_asym_l2: Sq8L2Kernel,
    /// `Σ wᵢ·cᵢ` over a prepared SQ8 query.
    pub sq8_asym_dot: Sq8DotKernel,
    /// `Σₛ tables[s·width + codes[s]]` (IVFPQ ADC scoring).
    pub adc_accumulate: AdcKernel,
}

impl fmt::Debug for KernelTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("KernelTable").field("level", &self.level).finish()
    }
}

// ---------------------------------------------------------------------------
// Shared helpers — the fixed dataflow every level must reproduce exactly.
// ---------------------------------------------------------------------------

/// Reduces the virtual accumulators in one fixed (sequential) order. Every
/// level stores its registers back into virtual-lane order and folds here,
/// so the rounding of the final sum is identical across levels.
#[inline(always)]
fn reduce(acc: &[f32]) -> f32 {
    let mut sum = 0.0f32;
    for &x in acc {
        sum += x;
    }
    sum
}

/// Shared sequential tail of the squared-l2 kernels.
#[inline(always)]
fn l2_tail(mut sum: f32, a: &[f32], b: &[f32]) -> f32 {
    for (&x, &y) in a.iter().zip(b) {
        let d = x - y;
        sum += d * d;
    }
    sum
}

/// Shared sequential tail of the dot kernels.
#[inline(always)]
fn dot_tail(mut sum: f32, a: &[f32], b: &[f32]) -> f32 {
    for (&x, &y) in a.iter().zip(b) {
        sum += x * y;
    }
    sum
}

/// Shared sequential tail of the SQ8 asymmetric-l2 kernels.
#[inline(always)]
fn sq8_l2_tail(mut sum: f32, t: &[f32], scale: &[f32], codes: &[u8]) -> f32 {
    for ((&x, &s), &c) in t.iter().zip(scale).zip(codes) {
        let d = x - s * f32::from(c);
        sum += d * d;
    }
    sum
}

/// Shared sequential tail of the SQ8 asymmetric-dot kernels.
#[inline(always)]
fn sq8_dot_tail(mut sum: f32, w: &[f32], codes: &[u8]) -> f32 {
    for (&x, &c) in w.iter().zip(codes) {
        sum += x * f32::from(c);
    }
    sum
}

/// Shared sequential tail of the ADC kernels, over subspaces `start..`.
#[inline(always)]
fn adc_tail(mut sum: f32, tables: &[f32], width: usize, codes: &[u8], start: usize) -> f32 {
    for (s, &code) in codes.iter().enumerate().skip(start) {
        sum += tables[s * width + code as usize];
    }
    sum
}

// ---------------------------------------------------------------------------
// Scalar fallback — the portable implementation and the oracle.
// ---------------------------------------------------------------------------

/// Portable kernels: the virtual-lane dataflow written as plain Rust. LLVM
/// auto-vectorizes these on any target; the explicit ISA modules below beat
/// them by using wider registers and packed `u8 → f32` conversion.
mod scalar {
    use super::{adc_tail, dot_tail, l2_tail, reduce, sq8_dot_tail, sq8_l2_tail, ADC_LANES, LANES};

    // lint:hot-path
    pub fn squared_l2(a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        let split = (a.len() / LANES) * LANES;
        let mut acc = [0.0f32; LANES];
        for (ca, cb) in a[..split].chunks_exact(LANES).zip(b[..split].chunks_exact(LANES)) {
            for ((slot, &x), &y) in acc.iter_mut().zip(ca).zip(cb) {
                let d = x - y;
                *slot += d * d;
            }
        }
        l2_tail(reduce(&acc), &a[split..], &b[split..])
    }

    // lint:hot-path
    pub fn dot(a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        let split = (a.len() / LANES) * LANES;
        let mut acc = [0.0f32; LANES];
        for (ca, cb) in a[..split].chunks_exact(LANES).zip(b[..split].chunks_exact(LANES)) {
            for ((slot, &x), &y) in acc.iter_mut().zip(ca).zip(cb) {
                *slot += x * y;
            }
        }
        dot_tail(reduce(&acc), &a[split..], &b[split..])
    }

    // lint:hot-path
    pub fn sq8_asym_l2(t: &[f32], scale: &[f32], codes: &[u8]) -> f32 {
        debug_assert_eq!(t.len(), codes.len());
        debug_assert_eq!(t.len(), scale.len());
        let split = (t.len() / LANES) * LANES;
        let mut acc = [0.0f32; LANES];
        for ((ct, cs), cc) in t[..split]
            .chunks_exact(LANES)
            .zip(scale[..split].chunks_exact(LANES))
            .zip(codes[..split].chunks_exact(LANES))
        {
            // Widen the code bytes as a separate pass so LLVM emits packed
            // u8→f32 conversions instead of interleaved scalar ones.
            let mut cf = [0.0f32; LANES];
            for (f, &c) in cf.iter_mut().zip(cc) {
                *f = f32::from(c);
            }
            for (((slot, &x), &s), &c) in acc.iter_mut().zip(ct).zip(cs).zip(&cf) {
                let d = x - s * c;
                *slot += d * d;
            }
        }
        sq8_l2_tail(reduce(&acc), &t[split..], &scale[split..], &codes[split..])
    }

    // lint:hot-path
    pub fn sq8_asym_dot(w: &[f32], codes: &[u8]) -> f32 {
        debug_assert_eq!(w.len(), codes.len());
        let split = (w.len() / LANES) * LANES;
        let mut acc = [0.0f32; LANES];
        for (cw, cc) in w[..split].chunks_exact(LANES).zip(codes[..split].chunks_exact(LANES)) {
            let mut cf = [0.0f32; LANES];
            for (f, &c) in cf.iter_mut().zip(cc) {
                *f = f32::from(c);
            }
            for ((slot, &x), &c) in acc.iter_mut().zip(cw).zip(&cf) {
                *slot += x * c;
            }
        }
        sq8_dot_tail(reduce(&acc), &w[split..], &codes[split..])
    }

    // lint:hot-path
    pub fn adc_accumulate(tables: &[f32], width: usize, codes: &[u8]) -> f32 {
        debug_assert_eq!(tables.len(), width * codes.len());
        let split = (codes.len() / ADC_LANES) * ADC_LANES;
        let mut acc = [0.0f32; ADC_LANES];
        let mut s = 0;
        while s < split {
            for (lane, slot) in acc.iter_mut().enumerate() {
                let sub = s + lane;
                *slot += tables[sub * width + codes[sub] as usize];
            }
            s += ADC_LANES;
        }
        adc_tail(reduce(&acc), tables, width, codes, split)
    }
}

// ---------------------------------------------------------------------------
// SSE2 — x86-64 baseline. The kernels are safe `#[target_feature]` fns (the
// attribute lets them call the arithmetic intrinsics without `unsafe`; only
// raw-pointer loads/stores need `unsafe` blocks). Table entries go through
// the `sse2_entry` wrappers because `#[target_feature]` fns cannot coerce
// to safe fn pointers.
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod sse2 {
    use super::{dot_tail, l2_tail, reduce, sq8_dot_tail, sq8_l2_tail, LANES};
    use core::arch::x86_64::{
        __m128, __m128i, _mm_add_ps, _mm_cvtepi32_ps, _mm_loadu_ps, _mm_loadu_si128, _mm_mul_ps,
        _mm_setzero_ps, _mm_setzero_si128, _mm_storeu_ps, _mm_sub_ps, _mm_unpackhi_epi16,
        _mm_unpackhi_epi8, _mm_unpacklo_epi16, _mm_unpacklo_epi8,
    };

    /// Stores the four 4-wide accumulators back into virtual-lane order and
    /// reduces them exactly like the scalar kernel.
    #[inline]
    #[target_feature(enable = "sse2")]
    fn reduce4x4(acc: [__m128; 4]) -> f32 {
        let mut lanes = [0.0f32; LANES];
        for (r, &v) in acc.iter().enumerate() {
            // SAFETY: `lanes` holds 16 f32; each 4-wide store writes the
            // disjoint in-bounds span `lanes[4r..4r + 4]` (r < 4).
            unsafe { _mm_storeu_ps(lanes.as_mut_ptr().add(4 * r), v) };
        }
        reduce(&lanes)
    }

    /// Widens 16 code bytes at `p` to four 4-wide f32 vectors in virtual-lane
    /// order (zero-extend u8 → u16 → i32, then exact i32 → f32 conversion).
    ///
    /// # Safety
    /// `p` must point to at least 16 readable bytes.
    #[inline]
    #[target_feature(enable = "sse2")]
    unsafe fn widen16(p: *const u8) -> [__m128; 4] {
        // SAFETY: the caller guarantees 16 readable bytes at `p`.
        let raw = unsafe { _mm_loadu_si128(p as *const __m128i) };
        let zero = _mm_setzero_si128();
        let lo16 = _mm_unpacklo_epi8(raw, zero);
        let hi16 = _mm_unpackhi_epi8(raw, zero);
        [
            _mm_cvtepi32_ps(_mm_unpacklo_epi16(lo16, zero)),
            _mm_cvtepi32_ps(_mm_unpackhi_epi16(lo16, zero)),
            _mm_cvtepi32_ps(_mm_unpacklo_epi16(hi16, zero)),
            _mm_cvtepi32_ps(_mm_unpackhi_epi16(hi16, zero)),
        ]
    }

    // lint:hot-path
    #[target_feature(enable = "sse2")]
    pub fn squared_l2(a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        let split = (a.len() / LANES) * LANES;
        let mut acc = [_mm_setzero_ps(); 4];
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        let mut i = 0;
        while i < split {
            for (r, slot) in acc.iter_mut().enumerate() {
                // SAFETY: `i + 16 <= split <= a.len() == b.len()`, so the
                // 4-wide loads at `i + 4r` (r < 4) are in bounds of both.
                let (va, vb) =
                    unsafe { (_mm_loadu_ps(pa.add(i + 4 * r)), _mm_loadu_ps(pb.add(i + 4 * r))) };
                let d = _mm_sub_ps(va, vb);
                *slot = _mm_add_ps(*slot, _mm_mul_ps(d, d));
            }
            i += LANES;
        }
        l2_tail(reduce4x4(acc), &a[split..], &b[split..])
    }

    // lint:hot-path
    #[target_feature(enable = "sse2")]
    pub fn dot(a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        let split = (a.len() / LANES) * LANES;
        let mut acc = [_mm_setzero_ps(); 4];
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        let mut i = 0;
        while i < split {
            for (r, slot) in acc.iter_mut().enumerate() {
                // SAFETY: `i + 16 <= split <= a.len() == b.len()`, so the
                // 4-wide loads at `i + 4r` (r < 4) are in bounds of both.
                let (va, vb) =
                    unsafe { (_mm_loadu_ps(pa.add(i + 4 * r)), _mm_loadu_ps(pb.add(i + 4 * r))) };
                *slot = _mm_add_ps(*slot, _mm_mul_ps(va, vb));
            }
            i += LANES;
        }
        dot_tail(reduce4x4(acc), &a[split..], &b[split..])
    }

    // lint:hot-path
    #[target_feature(enable = "sse2")]
    pub fn sq8_asym_l2(t: &[f32], scale: &[f32], codes: &[u8]) -> f32 {
        debug_assert_eq!(t.len(), codes.len());
        debug_assert_eq!(t.len(), scale.len());
        let split = (t.len() / LANES) * LANES;
        let mut acc = [_mm_setzero_ps(); 4];
        let (pt, ps, pc) = (t.as_ptr(), scale.as_ptr(), codes.as_ptr());
        let mut i = 0;
        while i < split {
            // SAFETY: `i + 16 <= split <= codes.len()`: 16 code bytes at `i`
            // are in bounds.
            let cf = unsafe { widen16(pc.add(i)) };
            for (r, &c) in cf.iter().enumerate() {
                // SAFETY: `i + 16 <= split <= t.len() == scale.len()`, so the
                // 4-wide loads at `i + 4r` (r < 4) are in bounds of both.
                let (vt, vs) =
                    unsafe { (_mm_loadu_ps(pt.add(i + 4 * r)), _mm_loadu_ps(ps.add(i + 4 * r))) };
                let d = _mm_sub_ps(vt, _mm_mul_ps(vs, c));
                acc[r] = _mm_add_ps(acc[r], _mm_mul_ps(d, d));
            }
            i += LANES;
        }
        sq8_l2_tail(reduce4x4(acc), &t[split..], &scale[split..], &codes[split..])
    }

    // lint:hot-path
    #[target_feature(enable = "sse2")]
    pub fn sq8_asym_dot(w: &[f32], codes: &[u8]) -> f32 {
        debug_assert_eq!(w.len(), codes.len());
        let split = (w.len() / LANES) * LANES;
        let mut acc = [_mm_setzero_ps(); 4];
        let (pw, pc) = (w.as_ptr(), codes.as_ptr());
        let mut i = 0;
        while i < split {
            // SAFETY: `i + 16 <= split <= codes.len()`: 16 code bytes at `i`
            // are in bounds.
            let cf = unsafe { widen16(pc.add(i)) };
            for (r, &c) in cf.iter().enumerate() {
                // SAFETY: `i + 16 <= split <= w.len()`: the 4-wide load at
                // `i + 4r` (r < 4) is in bounds.
                let vw = unsafe { _mm_loadu_ps(pw.add(i + 4 * r)) };
                acc[r] = _mm_add_ps(acc[r], _mm_mul_ps(vw, c));
            }
            i += LANES;
        }
        sq8_dot_tail(reduce4x4(acc), &w[split..], &codes[split..])
    }

}

// Plain-fn wrappers for the SSE2 table: `#[target_feature]` fns cannot
// coerce to safe fn pointers, so each table entry is an ordinary fn whose
// single unsafe call is justified by SSE2 being part of the x86-64 baseline.
#[cfg(target_arch = "x86_64")]
mod sse2_entry {
    use super::{scalar, sse2};

    pub fn squared_l2(a: &[f32], b: &[f32]) -> f32 {
        // SAFETY: SSE2 is a baseline feature of the x86-64 target, enabled
        // in every build that compiles this module.
        unsafe { sse2::squared_l2(a, b) }
    }

    pub fn dot(a: &[f32], b: &[f32]) -> f32 {
        // SAFETY: SSE2 is a baseline feature of the x86-64 target, enabled
        // in every build that compiles this module.
        unsafe { sse2::dot(a, b) }
    }

    pub fn sq8_asym_l2(t: &[f32], scale: &[f32], codes: &[u8]) -> f32 {
        // SAFETY: SSE2 is a baseline feature of the x86-64 target, enabled
        // in every build that compiles this module.
        unsafe { sse2::sq8_asym_l2(t, scale, codes) }
    }

    pub fn sq8_asym_dot(w: &[f32], codes: &[u8]) -> f32 {
        // SAFETY: SSE2 is a baseline feature of the x86-64 target, enabled
        // in every build that compiles this module.
        unsafe { sse2::sq8_asym_dot(w, codes) }
    }

    /// ADC has no profitable 128-bit form (no gather below AVX2), so the
    /// SSE2 table reuses the scalar loop.
    pub use scalar::adc_accumulate;
}

// ---------------------------------------------------------------------------
// AVX2 — requires runtime detection, so the kernels are `unsafe fn` with
// `#[target_feature]` and are only reachable through the safe wrappers the
// detection table installs.
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::{adc_tail, dot_tail, l2_tail, reduce, sq8_dot_tail, sq8_l2_tail, ADC_LANES, LANES};
    use core::arch::x86_64::{
        __m128i, __m256, _mm256_add_epi32, _mm256_add_ps, _mm256_cvtepu8_epi32,
        _mm256_i32gather_ps, _mm256_loadu_ps, _mm256_mul_ps, _mm256_set1_epi32, _mm256_setr_epi32,
        _mm256_setzero_ps, _mm256_storeu_ps, _mm256_sub_ps, _mm_loadl_epi64,
    };

    /// Stores the two 8-wide accumulators back into virtual-lane order and
    /// reduces them exactly like the scalar kernel.
    #[inline(always)]
    fn reduce2x8(lo: __m256, hi: __m256) -> f32 {
        let mut lanes = [0.0f32; LANES];
        // SAFETY: `lanes` holds 16 f32; the two 8-wide stores write the
        // disjoint in-bounds spans `lanes[0..8]` and `lanes[8..16]`.
        unsafe {
            _mm256_storeu_ps(lanes.as_mut_ptr(), lo);
            _mm256_storeu_ps(lanes.as_mut_ptr().add(8), hi);
        }
        reduce(&lanes)
    }

    /// `Σ (aᵢ - bᵢ)²` on two 8-wide accumulators.
    ///
    /// # Safety
    /// The CPU must support AVX2 (the kernel table only installs this after
    /// runtime detection).
    #[target_feature(enable = "avx2")]
    pub unsafe fn squared_l2(a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        let split = (a.len() / LANES) * LANES;
        let mut lo = _mm256_setzero_ps();
        let mut hi = _mm256_setzero_ps();
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        let mut i = 0;
        while i < split {
            // SAFETY: `i + 16 <= split <= a.len() == b.len()`, so the 8-wide
            // loads at `i` and `i + 8` are in bounds of both slices.
            let (a0, a1, b0, b1) = unsafe {
                (
                    _mm256_loadu_ps(pa.add(i)),
                    _mm256_loadu_ps(pa.add(i + 8)),
                    _mm256_loadu_ps(pb.add(i)),
                    _mm256_loadu_ps(pb.add(i + 8)),
                )
            };
            let d0 = _mm256_sub_ps(a0, b0);
            let d1 = _mm256_sub_ps(a1, b1);
            lo = _mm256_add_ps(lo, _mm256_mul_ps(d0, d0));
            hi = _mm256_add_ps(hi, _mm256_mul_ps(d1, d1));
            i += LANES;
        }
        l2_tail(reduce2x8(lo, hi), &a[split..], &b[split..])
    }

    /// `Σ aᵢ·bᵢ` on two 8-wide accumulators.
    ///
    /// # Safety
    /// The CPU must support AVX2 (the kernel table only installs this after
    /// runtime detection).
    #[target_feature(enable = "avx2")]
    pub unsafe fn dot(a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        let split = (a.len() / LANES) * LANES;
        let mut lo = _mm256_setzero_ps();
        let mut hi = _mm256_setzero_ps();
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        let mut i = 0;
        while i < split {
            // SAFETY: `i + 16 <= split <= a.len() == b.len()`, so the 8-wide
            // loads at `i` and `i + 8` are in bounds of both slices.
            let (a0, a1, b0, b1) = unsafe {
                (
                    _mm256_loadu_ps(pa.add(i)),
                    _mm256_loadu_ps(pa.add(i + 8)),
                    _mm256_loadu_ps(pb.add(i)),
                    _mm256_loadu_ps(pb.add(i + 8)),
                )
            };
            lo = _mm256_add_ps(lo, _mm256_mul_ps(a0, b0));
            hi = _mm256_add_ps(hi, _mm256_mul_ps(a1, b1));
            i += LANES;
        }
        dot_tail(reduce2x8(lo, hi), &a[split..], &b[split..])
    }

    /// `Σ (tᵢ - scaleᵢ·cᵢ)²` with packed `u8 → i32 → f32` widening
    /// (`vpmovzxbd` + `vcvtdq2ps`, 8 codes per conversion).
    ///
    /// # Safety
    /// The CPU must support AVX2 (the kernel table only installs this after
    /// runtime detection).
    #[target_feature(enable = "avx2")]
    pub unsafe fn sq8_asym_l2(t: &[f32], scale: &[f32], codes: &[u8]) -> f32 {
        debug_assert_eq!(t.len(), codes.len());
        debug_assert_eq!(t.len(), scale.len());
        let split = (t.len() / LANES) * LANES;
        let mut lo = _mm256_setzero_ps();
        let mut hi = _mm256_setzero_ps();
        let (pt, ps, pc) = (t.as_ptr(), scale.as_ptr(), codes.as_ptr());
        let mut i = 0;
        while i < split {
            // SAFETY: `i + 16 <= split` bounds every access: two 8-byte code
            // loads at `i` and `i + 8`, and 8-wide f32 loads at the same
            // offsets into `t` and `scale` (all three slices are `len`-equal).
            let (c0, c1, t0, t1, s0, s1) = unsafe {
                (
                    _mm256_cvtepu8_epi32(_mm_loadl_epi64(pc.add(i) as *const __m128i)),
                    _mm256_cvtepu8_epi32(_mm_loadl_epi64(pc.add(i + 8) as *const __m128i)),
                    _mm256_loadu_ps(pt.add(i)),
                    _mm256_loadu_ps(pt.add(i + 8)),
                    _mm256_loadu_ps(ps.add(i)),
                    _mm256_loadu_ps(ps.add(i + 8)),
                )
            };
            let f0 = core::arch::x86_64::_mm256_cvtepi32_ps(c0);
            let f1 = core::arch::x86_64::_mm256_cvtepi32_ps(c1);
            let d0 = _mm256_sub_ps(t0, _mm256_mul_ps(s0, f0));
            let d1 = _mm256_sub_ps(t1, _mm256_mul_ps(s1, f1));
            lo = _mm256_add_ps(lo, _mm256_mul_ps(d0, d0));
            hi = _mm256_add_ps(hi, _mm256_mul_ps(d1, d1));
            i += LANES;
        }
        sq8_l2_tail(reduce2x8(lo, hi), &t[split..], &scale[split..], &codes[split..])
    }

    /// `Σ wᵢ·cᵢ` with packed `u8 → f32` widening.
    ///
    /// # Safety
    /// The CPU must support AVX2 (the kernel table only installs this after
    /// runtime detection).
    #[target_feature(enable = "avx2")]
    pub unsafe fn sq8_asym_dot(w: &[f32], codes: &[u8]) -> f32 {
        debug_assert_eq!(w.len(), codes.len());
        let split = (w.len() / LANES) * LANES;
        let mut lo = _mm256_setzero_ps();
        let mut hi = _mm256_setzero_ps();
        let (pw, pc) = (w.as_ptr(), codes.as_ptr());
        let mut i = 0;
        while i < split {
            // SAFETY: `i + 16 <= split` bounds the two 8-byte code loads and
            // the two 8-wide f32 loads (`w.len() == codes.len()`).
            let (c0, c1, w0, w1) = unsafe {
                (
                    _mm256_cvtepu8_epi32(_mm_loadl_epi64(pc.add(i) as *const __m128i)),
                    _mm256_cvtepu8_epi32(_mm_loadl_epi64(pc.add(i + 8) as *const __m128i)),
                    _mm256_loadu_ps(pw.add(i)),
                    _mm256_loadu_ps(pw.add(i + 8)),
                )
            };
            let f0 = core::arch::x86_64::_mm256_cvtepi32_ps(c0);
            let f1 = core::arch::x86_64::_mm256_cvtepi32_ps(c1);
            lo = _mm256_add_ps(lo, _mm256_mul_ps(w0, f0));
            hi = _mm256_add_ps(hi, _mm256_mul_ps(w1, f1));
            i += LANES;
        }
        sq8_dot_tail(reduce2x8(lo, hi), &w[split..], &codes[split..])
    }

    /// ADC scoring with one 8-wide gather per chunk of subspaces.
    ///
    /// # Safety
    /// The CPU must support AVX2, and every gathered index must be in
    /// bounds: callers must ensure `tables.len() == width · codes.len()`,
    /// `width >= 256` (any `u8` code in range) and `tables.len() <= i32::MAX`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn adc_gather(tables: &[f32], width: usize, codes: &[u8]) -> f32 {
        debug_assert_eq!(tables.len(), width * codes.len());
        debug_assert!(width >= 256 && tables.len() <= i32::MAX as usize);
        let split = (codes.len() / ADC_LANES) * ADC_LANES;
        let w = width as i32;
        let mut acc = _mm256_setzero_ps();
        // Row offsets of the 8 subspaces of a chunk, advanced by 8·width
        // per iteration.
        let mut offs = _mm256_setr_epi32(0, w, 2 * w, 3 * w, 4 * w, 5 * w, 6 * w, 7 * w);
        let step = _mm256_set1_epi32(w * ADC_LANES as i32);
        let (ptab, pc) = (tables.as_ptr(), codes.as_ptr());
        let mut s = 0;
        while s < split {
            // SAFETY: `s + 8 <= split <= codes.len()`: the 8-byte code load
            // is in bounds. Each gathered index is `sub·width + code` with
            // `sub < codes.len()` and `code < 256 <= width`, hence
            // `< width·codes.len() == tables.len()` and representable in i32.
            let vals = unsafe {
                let c = _mm256_cvtepu8_epi32(_mm_loadl_epi64(pc.add(s) as *const __m128i));
                _mm256_i32gather_ps::<4>(ptab, _mm256_add_epi32(offs, c))
            };
            acc = _mm256_add_ps(acc, vals);
            offs = _mm256_add_epi32(offs, step);
            s += ADC_LANES;
        }
        let mut lanes = [0.0f32; ADC_LANES];
        // SAFETY: `lanes` holds 8 f32, exactly one 8-wide store.
        unsafe { _mm256_storeu_ps(lanes.as_mut_ptr(), acc) };
        adc_tail(reduce(&lanes), tables, width, codes, split)
    }
}

// Safe wrappers the AVX2 table installs: each is the *only* route to its
// `#[target_feature]` kernel, and the table is only handed out by
// `table_for` after runtime detection (rule R8 keeps detection out of the
// hot paths, and `target_feature` confined to this module).
#[cfg(target_arch = "x86_64")]
mod avx2_entry {
    use super::{avx2, scalar};

    pub fn squared_l2(a: &[f32], b: &[f32]) -> f32 {
        // SAFETY: installed only in the AVX2 table, which `table_for` hands
        // out only after `is_x86_feature_detected!("avx2")` succeeded.
        unsafe { avx2::squared_l2(a, b) }
    }

    pub fn dot(a: &[f32], b: &[f32]) -> f32 {
        // SAFETY: installed only in the AVX2 table, which `table_for` hands
        // out only after `is_x86_feature_detected!("avx2")` succeeded.
        unsafe { avx2::dot(a, b) }
    }

    pub fn sq8_asym_l2(t: &[f32], scale: &[f32], codes: &[u8]) -> f32 {
        // SAFETY: installed only in the AVX2 table, which `table_for` hands
        // out only after `is_x86_feature_detected!("avx2")` succeeded.
        unsafe { avx2::sq8_asym_l2(t, scale, codes) }
    }

    pub fn sq8_asym_dot(w: &[f32], codes: &[u8]) -> f32 {
        // SAFETY: installed only in the AVX2 table, which `table_for` hands
        // out only after `is_x86_feature_detected!("avx2")` succeeded.
        unsafe { avx2::sq8_asym_dot(w, codes) }
    }

    pub fn adc_accumulate(tables: &[f32], width: usize, codes: &[u8]) -> f32 {
        // The gather form needs every index provably in bounds; IVFPQ's
        // standard 256-entry codebooks satisfy `width >= 256` (any u8 code
        // is then in range). Anything else — including inconsistent inputs
        // the scalar loop would catch with a bounds panic — stays scalar.
        if width >= 256 && tables.len() == width * codes.len() && tables.len() <= i32::MAX as usize
        {
            // SAFETY: AVX2 detected (table installation invariant, as
            // above); the guard just established the index-bounds
            // precondition of `adc_gather`.
            unsafe { avx2::adc_gather(tables, width, codes) }
        } else {
            scalar::adc_accumulate(tables, width, codes)
        }
    }
}

// ---------------------------------------------------------------------------
// NEON — aarch64 baseline, so safe fns with unsafe loads, like SSE2.
// ---------------------------------------------------------------------------

#[cfg(target_arch = "aarch64")]
mod neon {
    use super::{dot_tail, l2_tail, reduce, sq8_dot_tail, sq8_l2_tail, LANES};
    use core::arch::aarch64::{
        float32x4_t, vaddq_f32, vcvtq_f32_u32, vdupq_n_f32, vget_high_u16, vget_high_u8,
        vget_low_u16, vget_low_u8, vld1q_f32, vld1q_u8, vmovl_u16, vmovl_u8, vmulq_f32, vst1q_f32,
        vsubq_f32,
    };

    /// Stores the four 4-wide accumulators back into virtual-lane order and
    /// reduces them exactly like the scalar kernel.
    #[inline]
    #[target_feature(enable = "neon")]
    fn reduce4x4(acc: [float32x4_t; 4]) -> f32 {
        let mut lanes = [0.0f32; LANES];
        for (r, &v) in acc.iter().enumerate() {
            // SAFETY: `lanes` holds 16 f32; each 4-wide store writes the
            // disjoint in-bounds span `lanes[4r..4r + 4]` (r < 4).
            unsafe { vst1q_f32(lanes.as_mut_ptr().add(4 * r), v) };
        }
        reduce(&lanes)
    }

    /// Widens 16 code bytes at `p` to four 4-wide f32 vectors in virtual-lane
    /// order (zero-extend u8 → u16 → u32, then exact u32 → f32 conversion).
    ///
    /// # Safety
    /// `p` must point to at least 16 readable bytes.
    #[inline]
    #[target_feature(enable = "neon")]
    unsafe fn widen16(p: *const u8) -> [float32x4_t; 4] {
        // SAFETY: the caller guarantees 16 readable bytes at `p`.
        let raw = unsafe { vld1q_u8(p) };
        let lo = vmovl_u8(vget_low_u8(raw));
        let hi = vmovl_u8(vget_high_u8(raw));
        [
            vcvtq_f32_u32(vmovl_u16(vget_low_u16(lo))),
            vcvtq_f32_u32(vmovl_u16(vget_high_u16(lo))),
            vcvtq_f32_u32(vmovl_u16(vget_low_u16(hi))),
            vcvtq_f32_u32(vmovl_u16(vget_high_u16(hi))),
        ]
    }

    // lint:hot-path
    #[target_feature(enable = "neon")]
    pub fn squared_l2(a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        let split = (a.len() / LANES) * LANES;
        let mut acc = [vdupq_n_f32(0.0); 4];
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        let mut i = 0;
        while i < split {
            for (r, slot) in acc.iter_mut().enumerate() {
                // SAFETY: `i + 16 <= split <= a.len() == b.len()`, so the
                // 4-wide loads at `i + 4r` (r < 4) are in bounds of both.
                let (va, vb) = unsafe { (vld1q_f32(pa.add(i + 4 * r)), vld1q_f32(pb.add(i + 4 * r))) };
                let d = vsubq_f32(va, vb);
                // Separate mul + add (no vfmaq) to stay bit-equal to scalar.
                *slot = vaddq_f32(*slot, vmulq_f32(d, d));
            }
            i += LANES;
        }
        l2_tail(reduce4x4(acc), &a[split..], &b[split..])
    }

    // lint:hot-path
    #[target_feature(enable = "neon")]
    pub fn dot(a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        let split = (a.len() / LANES) * LANES;
        let mut acc = [vdupq_n_f32(0.0); 4];
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        let mut i = 0;
        while i < split {
            for (r, slot) in acc.iter_mut().enumerate() {
                // SAFETY: `i + 16 <= split <= a.len() == b.len()`, so the
                // 4-wide loads at `i + 4r` (r < 4) are in bounds of both.
                let (va, vb) = unsafe { (vld1q_f32(pa.add(i + 4 * r)), vld1q_f32(pb.add(i + 4 * r))) };
                *slot = vaddq_f32(*slot, vmulq_f32(va, vb));
            }
            i += LANES;
        }
        dot_tail(reduce4x4(acc), &a[split..], &b[split..])
    }

    // lint:hot-path
    #[target_feature(enable = "neon")]
    pub fn sq8_asym_l2(t: &[f32], scale: &[f32], codes: &[u8]) -> f32 {
        debug_assert_eq!(t.len(), codes.len());
        debug_assert_eq!(t.len(), scale.len());
        let split = (t.len() / LANES) * LANES;
        let mut acc = [vdupq_n_f32(0.0); 4];
        let (pt, ps, pc) = (t.as_ptr(), scale.as_ptr(), codes.as_ptr());
        let mut i = 0;
        while i < split {
            // SAFETY: `i + 16 <= split <= codes.len()`: 16 code bytes at `i`
            // are in bounds.
            let cf = unsafe { widen16(pc.add(i)) };
            for (r, &c) in cf.iter().enumerate() {
                // SAFETY: `i + 16 <= split <= t.len() == scale.len()`, so the
                // 4-wide loads at `i + 4r` (r < 4) are in bounds of both.
                let (vt, vs) = unsafe { (vld1q_f32(pt.add(i + 4 * r)), vld1q_f32(ps.add(i + 4 * r))) };
                let d = vsubq_f32(vt, vmulq_f32(vs, c));
                acc[r] = vaddq_f32(acc[r], vmulq_f32(d, d));
            }
            i += LANES;
        }
        sq8_l2_tail(reduce4x4(acc), &t[split..], &scale[split..], &codes[split..])
    }

    // lint:hot-path
    #[target_feature(enable = "neon")]
    pub fn sq8_asym_dot(w: &[f32], codes: &[u8]) -> f32 {
        debug_assert_eq!(w.len(), codes.len());
        let split = (w.len() / LANES) * LANES;
        let mut acc = [vdupq_n_f32(0.0); 4];
        let (pw, pc) = (w.as_ptr(), codes.as_ptr());
        let mut i = 0;
        while i < split {
            // SAFETY: `i + 16 <= split <= codes.len()`: 16 code bytes at `i`
            // are in bounds.
            let cf = unsafe { widen16(pc.add(i)) };
            for (r, &c) in cf.iter().enumerate() {
                // SAFETY: `i + 16 <= split <= w.len()`: the 4-wide load at
                // `i + 4r` (r < 4) is in bounds.
                let vw = unsafe { vld1q_f32(pw.add(i + 4 * r)) };
                acc[r] = vaddq_f32(acc[r], vmulq_f32(vw, c));
            }
            i += LANES;
        }
        sq8_dot_tail(reduce4x4(acc), &w[split..], &codes[split..])
    }

}

// Plain-fn wrappers for the NEON table, mirroring `sse2_entry`: NEON is a
// baseline feature of aarch64, so the single unsafe call per wrapper is
// always sound there.
#[cfg(target_arch = "aarch64")]
mod neon_entry {
    use super::{neon, scalar};

    pub fn squared_l2(a: &[f32], b: &[f32]) -> f32 {
        // SAFETY: NEON is a baseline feature of the aarch64 target, enabled
        // in every build that compiles this module.
        unsafe { neon::squared_l2(a, b) }
    }

    pub fn dot(a: &[f32], b: &[f32]) -> f32 {
        // SAFETY: NEON is a baseline feature of the aarch64 target, enabled
        // in every build that compiles this module.
        unsafe { neon::dot(a, b) }
    }

    pub fn sq8_asym_l2(t: &[f32], scale: &[f32], codes: &[u8]) -> f32 {
        // SAFETY: NEON is a baseline feature of the aarch64 target, enabled
        // in every build that compiles this module.
        unsafe { neon::sq8_asym_l2(t, scale, codes) }
    }

    pub fn sq8_asym_dot(w: &[f32], codes: &[u8]) -> f32 {
        // SAFETY: NEON is a baseline feature of the aarch64 target, enabled
        // in every build that compiles this module.
        unsafe { neon::sq8_asym_dot(w, codes) }
    }

    /// No gather on NEON: the NEON table reuses the scalar ADC loop.
    pub use scalar::adc_accumulate;
}

// ---------------------------------------------------------------------------
// The tables and their one-time resolution.
// ---------------------------------------------------------------------------

static SCALAR_TABLE: KernelTable = KernelTable {
    level: SimdLevel::Scalar,
    squared_l2: scalar::squared_l2,
    dot: scalar::dot,
    sq8_asym_l2: scalar::sq8_asym_l2,
    sq8_asym_dot: scalar::sq8_asym_dot,
    adc_accumulate: scalar::adc_accumulate,
};

#[cfg(target_arch = "x86_64")]
static SSE2_TABLE: KernelTable = KernelTable {
    level: SimdLevel::Sse2,
    squared_l2: sse2_entry::squared_l2,
    dot: sse2_entry::dot,
    sq8_asym_l2: sse2_entry::sq8_asym_l2,
    sq8_asym_dot: sse2_entry::sq8_asym_dot,
    adc_accumulate: sse2_entry::adc_accumulate,
};

#[cfg(target_arch = "x86_64")]
static AVX2_TABLE: KernelTable = KernelTable {
    level: SimdLevel::Avx2,
    squared_l2: avx2_entry::squared_l2,
    dot: avx2_entry::dot,
    sq8_asym_l2: avx2_entry::sq8_asym_l2,
    sq8_asym_dot: avx2_entry::sq8_asym_dot,
    adc_accumulate: avx2_entry::adc_accumulate,
};

#[cfg(target_arch = "aarch64")]
static NEON_TABLE: KernelTable = KernelTable {
    level: SimdLevel::Neon,
    squared_l2: neon_entry::squared_l2,
    dot: neon_entry::dot,
    sq8_asym_l2: neon_entry::sq8_asym_l2,
    sq8_asym_dot: neon_entry::sq8_asym_dot,
    adc_accumulate: neon_entry::adc_accumulate,
};

/// The portable fallback table — also the oracle the agreement proptests
/// compare every enabled level against.
pub fn scalar_table() -> &'static KernelTable {
    &SCALAR_TABLE
}

/// The table for `level` if this build *and* this CPU support it, `None`
/// otherwise. This is the only place a `#[target_feature]` kernel becomes
/// reachable: levels above the target baseline gate on runtime detection.
pub fn table_for(level: SimdLevel) -> Option<&'static KernelTable> {
    match level {
        SimdLevel::Scalar => Some(&SCALAR_TABLE),
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Sse2 => Some(&SSE2_TABLE),
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => {
            (std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma"))
            .then_some(&AVX2_TABLE)
        }
        #[cfg(target_arch = "aarch64")]
        SimdLevel::Neon => Some(&NEON_TABLE),
        #[cfg(any(target_arch = "x86_64", target_arch = "aarch64", not(target_arch = "x86_64")))]
        _ => None,
    }
}

/// Every table the running CPU supports, scalar first (setup-path helper
/// for the agreement tests and the kernel bench).
pub fn enabled_tables() -> Vec<&'static KernelTable> {
    SimdLevel::ALL.iter().filter_map(|&l| table_for(l)).collect()
}

/// The best level the running CPU supports.
pub fn detected_level() -> SimdLevel {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            SimdLevel::Avx2
        } else {
            SimdLevel::Sse2
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        SimdLevel::Neon
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        SimdLevel::Scalar
    }
}

fn resolve() -> &'static KernelTable {
    let level = match std::env::var("NSG_SIMD") {
        Ok(v) => match v.trim().to_ascii_lowercase().as_str() {
            "" | "auto" => detected_level(),
            "scalar" => SimdLevel::Scalar,
            "sse2" => SimdLevel::Sse2,
            "avx2" => SimdLevel::Avx2,
            "neon" => SimdLevel::Neon,
            other => {
                eprintln!(
                    "NSG_SIMD: unknown level `{other}` (expected auto|scalar|sse2|avx2|neon); using auto"
                );
                detected_level()
            }
        },
        Err(_) => detected_level(),
    };
    table_for(level).unwrap_or_else(|| {
        eprintln!("NSG_SIMD: level `{level}` is unsupported on this CPU/build; falling back to scalar");
        &SCALAR_TABLE
    })
}

/// The process-wide kernel table: CPU-feature detection (and the `NSG_SIMD`
/// override) resolved exactly once, then cached. `prepare_query` re-reads
/// this per query via [`QueryScratch::reset`](crate::store::QueryScratch) —
/// the per-candidate `dist_to` loop never does.
pub fn kernels() -> &'static KernelTable {
    static RESOLVED: OnceLock<&'static KernelTable> = OnceLock::new();
    RESOLVED.get_or_init(resolve)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Lengths covering empty, single, sub-lane tails, exact lane multiples
    /// and off-by-one around them.
    const LENGTHS: [usize; 12] = [0, 1, 3, 7, 8, 15, 16, 17, 31, 33, 96, 131];

    fn f32_inputs(len: usize, salt: u32) -> (Vec<f32>, Vec<f32>) {
        let a = (0..len).map(|i| ((i as f32) * 0.37 + salt as f32).sin() * 12.5).collect();
        let b = (0..len).map(|i| ((i as f32) * 0.91 - salt as f32).cos() * 7.25).collect();
        (a, b)
    }

    fn sq8_inputs(len: usize, salt: u32) -> (Vec<f32>, Vec<f32>, Vec<u8>) {
        let t = (0..len).map(|i| ((i as f32) + salt as f32).sin() * 3.0).collect();
        let s = (0..len).map(|i| 0.01 + (i as f32 % 7.0) * 0.003).collect();
        let c = (0..len).map(|i| (i * 37 + salt as usize) as u8).collect();
        (t, s, c)
    }

    #[test]
    fn every_enabled_level_is_bit_identical_to_scalar() {
        let oracle = scalar_table();
        for table in enabled_tables() {
            for &len in &LENGTHS {
                let (a, b) = f32_inputs(len, 5);
                assert_eq!(
                    (table.squared_l2)(&a, &b).to_bits(),
                    (oracle.squared_l2)(&a, &b).to_bits(),
                    "squared_l2 level {} len {len}",
                    table.level
                );
                assert_eq!(
                    (table.dot)(&a, &b).to_bits(),
                    (oracle.dot)(&a, &b).to_bits(),
                    "dot level {} len {len}",
                    table.level
                );
                let (t, s, c) = sq8_inputs(len, 9);
                assert_eq!(
                    (table.sq8_asym_l2)(&t, &s, &c).to_bits(),
                    (oracle.sq8_asym_l2)(&t, &s, &c).to_bits(),
                    "sq8_asym_l2 level {} len {len}",
                    table.level
                );
                assert_eq!(
                    (table.sq8_asym_dot)(&t, &c).to_bits(),
                    (oracle.sq8_asym_dot)(&t, &c).to_bits(),
                    "sq8_asym_dot level {} len {len}",
                    table.level
                );
            }
        }
    }

    #[test]
    fn adc_matches_scalar_for_narrow_and_gather_widths() {
        for table in enabled_tables() {
            // width < 256 exercises the scalar fallback branch, width = 256
            // the gather (on AVX2).
            for (width, n) in [(16usize, 4usize), (16, 20), (256, 9), (256, 32), (256, 0)] {
                let codes: Vec<u8> = (0..n).map(|i| ((i * 53) % width.min(256)) as u8).collect();
                let tables: Vec<f32> =
                    (0..width * n).map(|i| ((i % 1013) as f32) * 0.25 - 60.0).collect();
                assert_eq!(
                    (table.adc_accumulate)(&tables, width, &codes).to_bits(),
                    (scalar_table().adc_accumulate)(&tables, width, &codes).to_bits(),
                    "adc level {} width {width} n {n}",
                    table.level
                );
            }
        }
    }

    #[test]
    fn scalar_kernels_match_naive_reference() {
        for &len in &LENGTHS {
            let (a, b) = f32_inputs(len, 3);
            let naive_l2: f32 = a.iter().zip(&b).map(|(x, y)| (x - y) * (x - y)).sum();
            let naive_dot: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
            let got_l2 = (scalar_table().squared_l2)(&a, &b);
            let got_dot = (scalar_table().dot)(&a, &b);
            assert!((got_l2 - naive_l2).abs() <= 1e-3 * naive_l2.abs().max(1.0), "len {len}");
            assert!((got_dot - naive_dot).abs() <= 1e-3 * naive_dot.abs().max(1.0), "len {len}");
        }
    }

    #[test]
    fn detection_and_tables_are_consistent() {
        // The detected level must have a table, and `kernels()` must return
        // one of the enabled tables.
        assert!(table_for(detected_level()).is_some());
        let resolved = kernels();
        assert!(enabled_tables().iter().any(|t| t.level == resolved.level));
        // Scalar is always available and always first in the enumeration.
        assert_eq!(enabled_tables()[0].level, SimdLevel::Scalar);
        assert_eq!(scalar_table().level, SimdLevel::Scalar);
    }

    #[test]
    fn level_names_round_trip() {
        for level in SimdLevel::ALL {
            assert_eq!(format!("{level}"), level.as_str());
        }
    }
}
