//! The [`VectorStore`] abstraction: what the graph-search hot loop needs
//! from vector storage, decoupled from how the vectors are encoded.
//!
//! Algorithm 1 never reads a base vector for its own sake — every access is
//! "how far is stored vector `id` from the query?", asked thousands of times
//! per query at graph-dictated (random) ids. That access pattern is exactly
//! where raw `f32` rows hurt at scale: a 128-d vector is 512 bytes of memory
//! traffic per distance evaluation, and the paper's Table 2 makes index +
//! vector memory the deciding factor for billion-scale deployment. This trait
//! lets the search loop run over *any* encoding that can answer the
//! asymmetric question — the flat [`VectorSet`](crate::VectorSet) (exact,
//! full bandwidth) or the SQ8 store of [`crate::quant`] (4× less bandwidth,
//! bounded error) — while staying fully monomorphized: the search loop is
//! generic over `S: VectorStore`, so the `f32` fast path compiles to the
//! same code it did when it was hard-wired.
//!
//! # The asymmetric query contract
//!
//! Quantized stores answer distances *asymmetrically*: the query stays in
//! full `f32` precision, only the stored side is compressed (the standard
//! ADC trick the IVFPQ baseline also uses). Doing that efficiently needs a
//! small per-query precomputation (e.g. subtracting the per-dimension lower
//! bounds from the query once, instead of per candidate), so the protocol
//! is two-step:
//!
//! 1. [`VectorStore::prepare_query`] runs once per search and writes the
//!    metric-specific prepared form into a reusable [`QueryScratch`],
//! 2. [`VectorStore::dist_to`] runs per candidate against that scratch.
//!
//! The scratch lives in the caller's `SearchContext`, so the warm query path
//! stays zero-allocation (the `alloc_guard` integration test covers the
//! quantized path too).

use crate::distance::{Distance, DistanceKind};
use crate::simd::KernelTable;
use crate::VectorSet;

/// Reusable per-thread scratch holding one prepared query.
///
/// The contents are store- and metric-specific (see the module docs); callers
/// treat it as an opaque buffer that [`VectorStore::prepare_query`] fills and
/// [`VectorStore::dist_to`] reads. Buffers grow to the largest dimension seen
/// and stay warm, so preparation allocates nothing after the first query.
///
/// The scratch also caches the resolved [`KernelTable`]: [`reset`](Self::reset)
/// re-reads the process-wide table (one `OnceLock` load per `prepare_query`),
/// and `dist_to` implementations call straight through the cached function
/// pointers — the per-candidate loop performs no detection work at all.
#[derive(Debug, Clone)]
pub struct QueryScratch {
    /// Per-dimension prepared values (the raw query for flat stores; a
    /// transformed form for quantized ones).
    prepared: Vec<f32>,
    /// Constant term folded out of the per-candidate loop at preparation
    /// time (e.g. `Σ qᵢ·minᵢ` for the quantized inner product).
    bias: f32,
    /// Which metric kind the buffer was prepared for — validated (debug
    /// builds) by `dist_to` so a scratch can never be replayed under the
    /// wrong metric.
    kind: DistanceKind,
    /// The SIMD kernel table resolved at the last preparation; `dist_to`
    /// reads distances through these function pointers.
    table: &'static KernelTable,
}

impl QueryScratch {
    /// Creates an empty scratch; buffers grow on first preparation.
    pub fn new() -> Self {
        Self {
            prepared: Vec::new(),
            bias: 0.0,
            kind: DistanceKind::SquaredEuclidean,
            table: crate::simd::kernels(),
        }
    }

    /// The prepared per-dimension values of the last
    /// [`prepare_query`](VectorStore::prepare_query).
    #[inline]
    pub fn prepared(&self) -> &[f32] {
        &self.prepared
    }

    /// The constant term folded at preparation time.
    #[inline]
    pub fn bias(&self) -> f32 {
        self.bias
    }

    /// The metric kind the scratch was last prepared for.
    #[inline]
    pub fn kind(&self) -> DistanceKind {
        self.kind
    }

    /// The SIMD kernel table cached at the last preparation — the function
    /// pointers `dist_to` implementations evaluate distances through.
    #[inline]
    pub fn table(&self) -> &'static KernelTable {
        self.table
    }

    /// Re-targets the scratch: clears and reserves the per-dimension buffer
    /// (no allocation once `dim` has been seen), records the metric kind and
    /// refreshes the cached kernel table (the "at most once per
    /// `prepare_query`" detection bound). Store implementations call this at
    /// the top of `prepare_query`, then fill the returned buffer.
    #[inline]
    pub fn reset(&mut self, dim: usize, kind: DistanceKind, bias: f32) -> &mut Vec<f32> {
        self.kind = kind;
        self.bias = bias;
        self.table = crate::simd::kernels();
        self.prepared.clear();
        self.prepared.reserve(dim);
        &mut self.prepared
    }

    /// Sets the folded constant term (for stores that compute it while
    /// filling the buffer).
    #[inline]
    pub fn set_bias(&mut self, bias: f32) {
        self.bias = bias;
    }
}

impl Default for QueryScratch {
    fn default() -> Self {
        Self::new()
    }
}

/// Vector storage as the search hot loop consumes it: asymmetric distance
/// evaluation against a prepared query, plus the prefetch and accounting
/// hooks the expansion loop and the experiment tables need.
///
/// Implementations: [`VectorSet`] (flat `f32` rows, exact distances — the
/// build-time and rerank substrate) and
/// [`Sq8VectorSet`](crate::quant::Sq8VectorSet) (per-dimension affine `u8`
/// codes, 4× less memory bandwidth, bounded quantization error).
///
/// The trait is deliberately **not** object-safe (`prepare_query` / `dist_to`
/// are generic over the metric): search loops monomorphize over the store so
/// each backend keeps its own codegen — the flat path inlines to exactly the
/// `metric.distance(query, row)` call it always was, the quantized path to
/// the auto-vectorized `u8` kernel.
pub trait VectorStore: Send + Sync {
    /// Number of stored vectors.
    fn len(&self) -> usize;

    /// Whether the store holds no vectors.
    #[inline]
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Dimensionality of the stored vectors.
    fn dim(&self) -> usize;

    /// Hints the CPU to pull vector `id`'s stored representation into cache.
    /// Must be a no-op (never a panic) when `id` is out of range — the
    /// lookahead prefetch runs ahead of the bounds checks.
    fn prefetch(&self, id: usize);

    /// Resident bytes of the stored vector payload (raw rows, or codes plus
    /// codebook parameters) — the "vector memory" column of the
    /// recall-vs-memory tables.
    fn memory_bytes(&self) -> usize;

    /// Prepares `query` for repeated [`dist_to`](Self::dist_to) evaluation
    /// under `metric`, writing the prepared form into `scratch`. Runs once
    /// per search; allocation-free once the scratch has seen this dimension.
    fn prepare_query<D: Distance + ?Sized>(&self, metric: &D, query: &[f32], scratch: &mut QueryScratch);

    /// Distance between the prepared query in `scratch` and stored vector
    /// `id`, under the metric `scratch` was prepared for. Exact for flat
    /// stores; an asymmetric approximation for quantized ones.
    ///
    /// # Panics
    /// May panic if `id` is out of range or `scratch` was prepared by a
    /// different store/metric.
    fn dist_to<D: Distance + ?Sized>(&self, metric: &D, scratch: &QueryScratch, id: usize) -> f32;
}

impl VectorStore for VectorSet {
    #[inline]
    fn len(&self) -> usize {
        VectorSet::len(self)
    }

    #[inline]
    fn dim(&self) -> usize {
        VectorSet::dim(self)
    }

    #[inline]
    fn prefetch(&self, id: usize) {
        VectorSet::prefetch(self, id);
    }

    #[inline]
    fn memory_bytes(&self) -> usize {
        VectorSet::memory_bytes(self)
    }

    /// Flat preparation is a plain copy: the prepared form *is* the query
    /// (the kernel table the distances run through is cached by `reset`).
    #[inline]
    fn prepare_query<D: Distance + ?Sized>(&self, metric: &D, query: &[f32], scratch: &mut QueryScratch) {
        let buf = scratch.reset(query.len(), metric.kind(), 0.0);
        buf.extend_from_slice(query);
    }

    /// Evaluates through the kernel table cached at preparation time — the
    /// same math `metric.distance(query, row)` computes, minus the one
    /// `OnceLock` read per candidate the free-function kernels would pay.
    /// (Wrapper metrics' `distance` overrides are not consulted on this
    /// path, matching the quantized store; evaluation counting on the store
    /// path goes through `SearchContext` stats, not `CountingDistance`.)
    #[inline]
    // lint:hot-path
    fn dist_to<D: Distance + ?Sized>(&self, metric: &D, scratch: &QueryScratch, id: usize) -> f32 {
        debug_assert_eq!(scratch.kind(), metric.kind(), "scratch prepared for a different metric");
        let t = scratch.table();
        match metric.kind() {
            DistanceKind::SquaredEuclidean => (t.squared_l2)(scratch.prepared(), self.get(id)),
            DistanceKind::Euclidean => (t.squared_l2)(scratch.prepared(), self.get(id)).sqrt(),
            DistanceKind::InnerProduct => -(t.dot)(scratch.prepared(), self.get(id)),
        }
    }
}

/// Forwarding impl so shared ownership (`Arc<VectorSet>`, `Arc<Sq8VectorSet>`)
/// passes straight into the generic search routines — generics do not get the
/// deref coercion concrete `&VectorSet` parameters enjoyed.
impl<S: VectorStore + ?Sized> VectorStore for std::sync::Arc<S> {
    #[inline]
    fn len(&self) -> usize {
        (**self).len()
    }

    #[inline]
    fn dim(&self) -> usize {
        (**self).dim()
    }

    #[inline]
    fn prefetch(&self, id: usize) {
        (**self).prefetch(id)
    }

    #[inline]
    fn memory_bytes(&self) -> usize {
        (**self).memory_bytes()
    }

    #[inline]
    fn prepare_query<D: Distance + ?Sized>(&self, metric: &D, query: &[f32], scratch: &mut QueryScratch) {
        (**self).prepare_query(metric, query, scratch)
    }

    #[inline]
    fn dist_to<D: Distance + ?Sized>(&self, metric: &D, scratch: &QueryScratch, id: usize) -> f32 {
        (**self).dist_to(metric, scratch, id)
    }
}

impl<S: VectorStore + ?Sized> VectorStore for &S {
    #[inline]
    fn len(&self) -> usize {
        (**self).len()
    }

    #[inline]
    fn dim(&self) -> usize {
        (**self).dim()
    }

    #[inline]
    fn prefetch(&self, id: usize) {
        (**self).prefetch(id)
    }

    #[inline]
    fn memory_bytes(&self) -> usize {
        (**self).memory_bytes()
    }

    #[inline]
    fn prepare_query<D: Distance + ?Sized>(&self, metric: &D, query: &[f32], scratch: &mut QueryScratch) {
        (**self).prepare_query(metric, query, scratch)
    }

    #[inline]
    fn dist_to<D: Distance + ?Sized>(&self, metric: &D, scratch: &QueryScratch, id: usize) -> f32 {
        (**self).dist_to(metric, scratch, id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::{Euclidean, InnerProduct, SquaredEuclidean};
    use std::sync::Arc;

    #[test]
    fn flat_store_distances_match_direct_metric_calls() {
        let set = VectorSet::from_rows(3, &[[0.0, 0.0, 0.0], [1.0, 2.0, 2.0], [3.0, 0.0, 4.0]]);
        let query = [1.0f32, 1.0, 1.0];
        let mut scratch = QueryScratch::new();
        set.prepare_query(&SquaredEuclidean, &query, &mut scratch);
        for i in 0..set.len() {
            assert_eq!(
                set.dist_to(&SquaredEuclidean, &scratch, i),
                SquaredEuclidean.distance(&query, set.get(i))
            );
        }
        set.prepare_query(&InnerProduct, &query, &mut scratch);
        assert_eq!(scratch.kind(), DistanceKind::InnerProduct);
        assert_eq!(set.dist_to(&InnerProduct, &scratch, 1), -5.0);
        set.prepare_query(&Euclidean, &query, &mut scratch);
        assert_eq!(set.dist_to(&Euclidean, &scratch, 2), Euclidean.distance(&query, set.get(2)));
    }

    #[test]
    fn scratch_reuse_does_not_grow_after_first_query() {
        let set = VectorSet::from_rows(4, &[[1.0, 2.0, 3.0, 4.0]]);
        let mut scratch = QueryScratch::new();
        set.prepare_query(&SquaredEuclidean, &[0.0; 4], &mut scratch);
        let cap = scratch.prepared.capacity();
        for _ in 0..10 {
            set.prepare_query(&SquaredEuclidean, &[1.0; 4], &mut scratch);
            assert_eq!(scratch.prepared.capacity(), cap, "scratch buffer reallocated on reuse");
        }
        assert_eq!(scratch.prepared(), &[1.0; 4]);
    }

    #[test]
    fn store_accessors_mirror_the_inherent_api() {
        let set = VectorSet::from_rows(2, &[[0.0, 1.0], [2.0, 3.0]]);
        assert_eq!(VectorStore::len(&set), 2);
        assert_eq!(VectorStore::dim(&set), 2);
        assert!(!VectorStore::is_empty(&set));
        assert_eq!(VectorStore::memory_bytes(&set), 4 * 4);
        VectorStore::prefetch(&set, 0);
        VectorStore::prefetch(&set, 99); // out of range: must be a no-op
    }

    #[test]
    fn arc_and_ref_forwarding_answer_identically() {
        let set = VectorSet::from_rows(2, &[[0.0, 0.0], [3.0, 4.0]]);
        let arc = Arc::new(set.clone());
        let mut a = QueryScratch::new();
        let mut b = QueryScratch::new();
        let query = [1.0f32, 1.0];
        set.prepare_query(&SquaredEuclidean, &query, &mut a);
        arc.prepare_query(&SquaredEuclidean, &query, &mut b);
        assert_eq!(
            set.dist_to(&SquaredEuclidean, &a, 1),
            arc.dist_to(&SquaredEuclidean, &b, 1)
        );
        let by_ref = &set;
        assert_eq!(VectorStore::len(&by_ref), 2);
        assert_eq!(arc.memory_bytes(), set.memory_bytes());
    }
}
