//! Synthetic dataset generators.
//!
//! The paper evaluates on SIFT1M, GIST1M, two synthetic sets (RAND4M from
//! U(0,1) and GAUSS5M from N(0,3)), a 100M subset of DEEP1B, and proprietary
//! Taobao e-commerce vectors. This reproduction cannot ship the large or
//! proprietary datasets, so this module provides deterministic, seeded
//! generators with the same dimensionality and a qualitatively matching
//! distributional character at laptop scale:
//!
//! * [`uniform`] — i.i.d. U(0,1) components (RAND4M stand-in),
//! * [`gaussian`] — i.i.d. N(0, 3) components (GAUSS5M stand-in),
//! * [`sift_like`] — 128-d, non-negative, integer-valued, clustered vectors
//!   whose local intrinsic dimension is far below 128 (SIFT1M stand-in),
//! * [`gist_like`] — 960-d vectors on a low-dimensional manifold with dense
//!   small-magnitude components in [0, 1.5] (GIST1M stand-in),
//! * [`deep_like`] — 96-d unit-normalized deep-descriptor-style vectors
//!   (DEEP1B stand-in),
//! * [`ecommerce_like`] — 128-d mixture of user/item style clusters with heavy
//!   popularity skew (Taobao stand-in).
//!
//! Every generator takes an explicit seed and is deterministic across runs and
//! platforms, so the experiment binaries are reproducible.

use crate::dataset::VectorSet;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Named dataset descriptor tying a generator to the paper dataset it stands
/// in for (used by Table 1 and the experiment binaries).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum SyntheticKind {
    /// Stand-in for SIFT1M (128-d clustered integer-valued descriptors).
    SiftLike,
    /// Stand-in for GIST1M (960-d dense low-magnitude descriptors).
    GistLike,
    /// Stand-in for RAND4M (uniform U(0,1), 128-d).
    RandUniform,
    /// Stand-in for GAUSS5M (N(0,3), 128-d).
    Gauss,
    /// Stand-in for DEEP1B / DEEP100M (96-d unit-norm deep descriptors).
    DeepLike,
    /// Stand-in for the Taobao e-commerce vectors (128-d).
    EcommerceLike,
}

impl SyntheticKind {
    /// Dimensionality matching the paper's dataset.
    pub fn dim(self) -> usize {
        match self {
            SyntheticKind::SiftLike => 128,
            SyntheticKind::GistLike => 960,
            SyntheticKind::RandUniform => 128,
            SyntheticKind::Gauss => 128,
            SyntheticKind::DeepLike => 96,
            SyntheticKind::EcommerceLike => 128,
        }
    }

    /// The paper dataset this kind approximates.
    pub fn paper_name(self) -> &'static str {
        match self {
            SyntheticKind::SiftLike => "SIFT1M",
            SyntheticKind::GistLike => "GIST1M",
            SyntheticKind::RandUniform => "RAND4M",
            SyntheticKind::Gauss => "GAUSS5M",
            SyntheticKind::DeepLike => "DEEP100M",
            SyntheticKind::EcommerceLike => "Taobao E-commerce",
        }
    }

    /// Short machine-friendly name used in CSV output.
    pub fn short_name(self) -> &'static str {
        match self {
            SyntheticKind::SiftLike => "sift-like",
            SyntheticKind::GistLike => "gist-like",
            SyntheticKind::RandUniform => "rand-uniform",
            SyntheticKind::Gauss => "gauss",
            SyntheticKind::DeepLike => "deep-like",
            SyntheticKind::EcommerceLike => "ecommerce-like",
        }
    }

    /// Generates `n` base vectors of this kind with the given seed.
    pub fn generate(self, n: usize, seed: u64) -> VectorSet {
        match self {
            SyntheticKind::SiftLike => sift_like(n, seed),
            SyntheticKind::GistLike => gist_like(n, seed),
            SyntheticKind::RandUniform => uniform(n, self.dim(), seed),
            SyntheticKind::Gauss => gaussian(n, self.dim(), 0.0, 3.0, seed),
            SyntheticKind::DeepLike => deep_like(n, seed),
            SyntheticKind::EcommerceLike => ecommerce_like(n, seed),
        }
    }

    /// All kinds in the order Table 1 lists the million-scale datasets,
    /// followed by the large-scale ones.
    pub fn all() -> [SyntheticKind; 6] {
        [
            SyntheticKind::SiftLike,
            SyntheticKind::GistLike,
            SyntheticKind::RandUniform,
            SyntheticKind::Gauss,
            SyntheticKind::DeepLike,
            SyntheticKind::EcommerceLike,
        ]
    }
}

/// Draws a standard-normal sample via the Box–Muller transform, avoiding an
/// extra distribution dependency.
#[inline]
fn normal_sample(rng: &mut StdRng) -> f32 {
    loop {
        let u1: f32 = rng.random::<f32>();
        if u1 <= f32::EPSILON {
            continue;
        }
        let u2: f32 = rng.random::<f32>();
        let r = (-2.0 * u1.ln()).sqrt();
        return r * (2.0 * std::f32::consts::PI * u2).cos();
    }
}

/// `n` vectors of dimension `dim` with i.i.d. U(0,1) components (RAND4M-like).
pub fn uniform(n: usize, dim: usize, seed: u64) -> VectorSet {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut data = Vec::with_capacity(n * dim);
    for _ in 0..n * dim {
        data.push(rng.random::<f32>());
    }
    VectorSet::from_flat(dim, data)
}

/// `n` vectors of dimension `dim` with i.i.d. N(`mean`, `std`) components
/// (GAUSS5M uses N(0, 3)).
pub fn gaussian(n: usize, dim: usize, mean: f32, std: f32, seed: u64) -> VectorSet {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut data = Vec::with_capacity(n * dim);
    for _ in 0..n * dim {
        data.push(mean + std * normal_sample(&mut rng));
    }
    VectorSet::from_flat(dim, data)
}

/// Generates clustered data: `clusters` Gaussian blobs with per-cluster
/// anisotropic spread, which is what gives real descriptor datasets their low
/// local intrinsic dimension relative to the ambient dimension.
fn clustered(
    n: usize,
    dim: usize,
    clusters: usize,
    center_scale: f32,
    within_scale: f32,
    intrinsic_dim: usize,
    seed: u64,
) -> VectorSet {
    let mut rng = StdRng::seed_from_u64(seed);
    let clusters = clusters.max(1);
    let intrinsic_dim = intrinsic_dim.clamp(1, dim);

    // Cluster centres.
    let mut centers = Vec::with_capacity(clusters);
    for _ in 0..clusters {
        let c: Vec<f32> = (0..dim).map(|_| center_scale * normal_sample(&mut rng)).collect();
        centers.push(c);
    }
    // Per-cluster random basis of `intrinsic_dim` directions; points vary
    // mostly within that subspace plus small isotropic noise.
    let mut bases = Vec::with_capacity(clusters);
    for _ in 0..clusters {
        let mut basis = Vec::with_capacity(intrinsic_dim);
        for _ in 0..intrinsic_dim {
            let mut dir: Vec<f32> = (0..dim).map(|_| normal_sample(&mut rng)).collect();
            let norm = dir.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-6);
            for x in &mut dir {
                *x /= norm;
            }
            basis.push(dir);
        }
        bases.push(basis);
    }

    let mut data = Vec::with_capacity(n * dim);
    for i in 0..n {
        let c = i % clusters;
        let mut v = centers[c].clone();
        for dir in &bases[c] {
            let coef = within_scale * normal_sample(&mut rng);
            for (x, &d) in v.iter_mut().zip(dir) {
                *x += coef * d;
            }
        }
        // Small isotropic noise so points do not lie exactly on the subspace.
        for x in &mut v {
            *x += 0.05 * within_scale * normal_sample(&mut rng);
        }
        data.extend_from_slice(&v);
    }
    VectorSet::from_flat(dim, data)
}

/// SIFT1M stand-in: 128-d, clustered, non-negative, rounded to integers in
/// [0, 255] (SIFT components are histogram counts stored as bytes).
///
/// Cluster centres are drawn close enough together that the modes overlap —
/// real SIFT descriptors form a continuum of overlapping modes rather than
/// isolated islands, which is what gives the dataset its moderate local
/// intrinsic dimension (≈13) despite the 128-d ambient space.
pub fn sift_like(n: usize, seed: u64) -> VectorSet {
    let clusters = (n / 40).clamp(8, 256);
    let raw = clustered(n, 128, clusters, 5.0, 11.0, 12, seed);
    let mut data = Vec::with_capacity(n * 128);
    for v in raw.iter() {
        for &x in v {
            let shifted = (x + 40.0).clamp(0.0, 255.0);
            data.push(shifted.round());
        }
    }
    VectorSet::from_flat(128, data)
}

/// GIST1M stand-in: 960-d dense vectors on a ~32-dimensional manifold with
/// components clipped to [0, 1.5], matching the paper's description of GIST
/// component ranges.
pub fn gist_like(n: usize, seed: u64) -> VectorSet {
    let clusters = (n / 60).clamp(8, 128);
    let raw = clustered(n, 960, clusters, 0.05, 0.15, 32, seed);
    let mut data = Vec::with_capacity(n * 960);
    for v in raw.iter() {
        for &x in v {
            data.push((x + 0.6).clamp(0.0, 1.5));
        }
    }
    VectorSet::from_flat(960, data)
}

/// DEEP1B stand-in: 96-d clustered descriptors normalized to unit l2 norm
/// (DEEP descriptors are PCA-compressed, l2-normalized CNN activations).
pub fn deep_like(n: usize, seed: u64) -> VectorSet {
    let clusters = (n / 50).clamp(8, 256);
    let raw = clustered(n, 96, clusters, 0.35, 0.4, 24, seed);
    let mut data = Vec::with_capacity(n * 96);
    for v in raw.iter() {
        let norm = v.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-6);
        data.extend(v.iter().map(|x| x / norm));
    }
    VectorSet::from_flat(96, data)
}

/// Taobao e-commerce stand-in: 128-d mixture of "item" clusters with a skewed
/// (Zipf-like) cluster popularity so dense regions and sparse tails coexist,
/// which is the regime where the paper reports degree explosion without the
/// NSG degree cap.
pub fn ecommerce_like(n: usize, seed: u64) -> VectorSet {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5a5a_5a5a);
    let dim = 128;
    let clusters = 48usize;
    // Zipf-like popularity weights.
    let weights: Vec<f64> = (1..=clusters).map(|r| 1.0 / (r as f64).powf(1.1)).collect();
    let total: f64 = weights.iter().sum();
    let mut centers = Vec::with_capacity(clusters);
    for _ in 0..clusters {
        let c: Vec<f32> = (0..dim).map(|_| 1.2 * normal_sample(&mut rng)).collect();
        centers.push(c);
    }
    let mut data = Vec::with_capacity(n * dim);
    for _ in 0..n {
        let mut pick: f64 = rng.random::<f64>() * total;
        let mut c = 0;
        for (idx, w) in weights.iter().enumerate() {
            if pick < *w {
                c = idx;
                break;
            }
            pick -= w;
        }
        for &center_x in &centers[c] {
            data.push(center_x + 0.8 * normal_sample(&mut rng));
        }
    }
    VectorSet::from_flat(dim, data)
}

/// A base/query pair drawn from the same distribution: `n_base + n_query`
/// points are generated in one draw and the tail is held out as the query set,
/// mirroring the paper's setup where queries are held out from (and share the
/// distribution of) the base data.
pub fn base_and_queries(kind: SyntheticKind, n_base: usize, n_query: usize, seed: u64) -> (VectorSet, VectorSet) {
    let all = kind.generate(n_base + n_query, seed);
    all.split_at(n_base)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        for kind in SyntheticKind::all() {
            let a = kind.generate(50, 7);
            let b = kind.generate(50, 7);
            assert_eq!(a, b, "{kind:?} not deterministic");
            let c = kind.generate(50, 8);
            assert_ne!(a, c, "{kind:?} ignores the seed");
        }
    }

    #[test]
    fn dimensions_match_paper() {
        assert_eq!(SyntheticKind::SiftLike.generate(5, 1).dim(), 128);
        assert_eq!(SyntheticKind::GistLike.generate(5, 1).dim(), 960);
        assert_eq!(SyntheticKind::RandUniform.generate(5, 1).dim(), 128);
        assert_eq!(SyntheticKind::Gauss.generate(5, 1).dim(), 128);
        assert_eq!(SyntheticKind::DeepLike.generate(5, 1).dim(), 96);
        assert_eq!(SyntheticKind::EcommerceLike.generate(5, 1).dim(), 128);
    }

    #[test]
    fn uniform_components_are_in_unit_interval() {
        let s = uniform(100, 16, 3);
        assert!(s.as_flat().iter().all(|&x| (0.0..1.0).contains(&x)));
    }

    #[test]
    fn gaussian_has_requested_moments_roughly() {
        let s = gaussian(2000, 8, 0.0, 3.0, 11);
        let flat = s.as_flat();
        let mean: f32 = flat.iter().sum::<f32>() / flat.len() as f32;
        let var: f32 = flat.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / flat.len() as f32;
        assert!(mean.abs() < 0.2, "mean {mean}");
        assert!((var.sqrt() - 3.0).abs() < 0.3, "std {}", var.sqrt());
    }

    #[test]
    fn sift_like_is_integer_valued_and_bounded() {
        let s = sift_like(200, 5);
        assert!(s
            .as_flat()
            .iter()
            .all(|&x| (0.0..=255.0).contains(&x) && x.fract() == 0.0));
    }

    #[test]
    fn gist_like_is_bounded() {
        let s = gist_like(20, 5);
        assert!(s.as_flat().iter().all(|&x| (0.0..=1.5).contains(&x)));
    }

    #[test]
    fn deep_like_is_unit_normalized() {
        let s = deep_like(50, 9);
        for v in s.iter() {
            let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
            assert!((norm - 1.0).abs() < 1e-3, "norm {norm}");
        }
    }

    #[test]
    fn base_and_queries_are_disjoint_but_share_the_distribution() {
        let (base, queries) = base_and_queries(SyntheticKind::SiftLike, 30, 10, 123);
        assert_eq!(base.len(), 30);
        assert_eq!(queries.len(), 10);
        assert_ne!(base.get(0), queries.get(0));
        // Held out from the same draw: the query rows are the tail of the
        // single generated pool.
        let all = SyntheticKind::SiftLike.generate(40, 123);
        assert_eq!(queries.get(0), all.get(30));
    }

    #[test]
    fn requested_count_is_respected() {
        for kind in SyntheticKind::all() {
            assert_eq!(kind.generate(37, 2).len(), 37);
        }
    }
}
