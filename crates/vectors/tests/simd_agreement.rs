//! Property tests asserting every enabled SIMD kernel table agrees with the
//! scalar reference kernels.
//!
//! The kernels in `nsg_vectors::simd` are written against a shared
//! "virtual lane" dataflow (same accumulator count, same mul-then-add order,
//! same reduction sequence), so agreement here is *bitwise*, which is well
//! inside the ≤ 4 ULP budget the kernels advertise. Lengths are drawn from
//! `0..200`, covering the empty input, single element, sub-lane tails, and
//! multi-block bodies.
//!
//! The `NSG_SIMD=scalar` override is asserted separately: when CI sets that
//! variable, `kernels()` must resolve to the scalar table.

use nsg_vectors::simd::{self, scalar_table, KernelTable};
use proptest::collection::vec;
use proptest::prelude::*;

/// Absolute difference in ULPs between two finite f32 values, treating the
/// bit patterns as sign-magnitude integers. Identical bits → 0.
fn ulp_diff(a: f32, b: f32) -> u64 {
    fn key(x: f32) -> i64 {
        let bits = x.to_bits() as i32;
        if bits < 0 {
            i32::MIN.wrapping_sub(bits) as i64
        } else {
            bits as i64
        }
    }
    (key(a) - key(b)).unsigned_abs()
}

const MAX_ULPS: u64 = 4;

fn enabled_non_scalar() -> Vec<&'static KernelTable> {
    simd::enabled_tables()
        .into_iter()
        .filter(|t| t.level != simd::SimdLevel::Scalar)
        .collect()
}

/// Two equal-length f32 vectors with a shared random length in `0..200`.
fn f32_pair() -> impl Strategy<Value = (Vec<f32>, Vec<f32>)> {
    (0usize..200).prop_flat_map(|len| {
        (
            vec(-100.0f32..100.0, len),
            vec(-100.0f32..100.0, len),
        )
    })
}

/// Prepared query values, per-dimension scales, and a u8 code row, all of one
/// random length in `0..200`.
fn sq8_triple() -> impl Strategy<Value = (Vec<f32>, Vec<f32>, Vec<u8>)> {
    (0usize..200).prop_flat_map(|len| {
        (
            vec(-100.0f32..100.0, len),
            vec(0.001f32..2.0, len),
            vec(0u8..255, len),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn squared_l2_matches_scalar(pair in f32_pair()) {
        let (a, b) = pair;
        let want = (scalar_table().squared_l2)(&a, &b);
        for t in enabled_non_scalar() {
            let got = (t.squared_l2)(&a, &b);
            prop_assert!(
                ulp_diff(got, want) <= MAX_ULPS,
                "{} squared_l2 diverged: {got} vs scalar {want} (len {})",
                t.level, a.len()
            );
        }
    }

    #[test]
    fn dot_matches_scalar(pair in f32_pair()) {
        let (a, b) = pair;
        let want = (scalar_table().dot)(&a, &b);
        for t in enabled_non_scalar() {
            let got = (t.dot)(&a, &b);
            prop_assert!(
                ulp_diff(got, want) <= MAX_ULPS,
                "{} dot diverged: {got} vs scalar {want} (len {})",
                t.level, a.len()
            );
        }
    }

    #[test]
    fn sq8_asym_l2_matches_scalar(triple in sq8_triple()) {
        let (prepared, scale, code) = triple;
        let want = (scalar_table().sq8_asym_l2)(&prepared, &scale, &code);
        for t in enabled_non_scalar() {
            let got = (t.sq8_asym_l2)(&prepared, &scale, &code);
            // The u8→f32 widening is exact on every ISA, so the integer
            // portion of the kernel cannot diverge; the float accumulation
            // is bit-identical by construction.
            prop_assert_eq!(
                got.to_bits(), want.to_bits(),
                "{} sq8_asym_l2 diverged: {} vs scalar {} (len {})",
                t.level, got, want, code.len()
            );
        }
    }

    #[test]
    fn sq8_asym_dot_matches_scalar(triple in sq8_triple()) {
        let (prepared, scale, code) = triple;
        // For the dot kernel the per-dimension scale is folded into the
        // prepared weights ahead of time, so `scale` only feeds the l2 test.
        let _ = scale;
        let want = (scalar_table().sq8_asym_dot)(&prepared, &code);
        for t in enabled_non_scalar() {
            let got = (t.sq8_asym_dot)(&prepared, &code);
            prop_assert_eq!(
                got.to_bits(), want.to_bits(),
                "{} sq8_asym_dot diverged: {} vs scalar {} (len {})",
                t.level, got, want, code.len()
            );
        }
    }
}

/// ADC accumulation over LUT rows: exercised at a narrow width (16, below the
/// AVX2 gather threshold) and at the gather width (256) so both the guarded
/// fallback and the gather path are compared against scalar.
#[test]
fn adc_accumulate_matches_scalar_at_narrow_and_gather_widths() {
    let mut rng_state = 0x9E37_79B9u64;
    let mut next = move || {
        rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
        (rng_state >> 33) as u32
    };
    for &width in &[16usize, 256] {
        for &n in &[0usize, 1, 7, 8, 9, 40] {
            let tables: Vec<f32> = (0..width * n)
                .map(|_| (next() % 1000) as f32 / 250.0 - 2.0)
                .collect();
            let codes: Vec<u8> = (0..n).map(|_| (next() % width as u32) as u8).collect();
            let want = (scalar_table().adc_accumulate)(&tables, width, &codes);
            for t in enabled_non_scalar() {
                let got = (t.adc_accumulate)(&tables, width, &codes);
                assert_eq!(
                    got.to_bits(),
                    want.to_bits(),
                    "{} adc_accumulate diverged at width {width}, n {n}: {got} vs {want}",
                    t.level
                );
            }
        }
    }
}

/// When the `NSG_SIMD=scalar` override is set (as the CI simd-smoke step
/// does), the resolved table must be the scalar fallback regardless of what
/// the CPU supports. Under any other setting the resolved table must be one
/// of the enabled tables.
#[test]
fn nsg_simd_override_is_honored() {
    let resolved = simd::kernels();
    match std::env::var("NSG_SIMD").as_deref() {
        Ok("scalar") => assert_eq!(resolved.level, simd::SimdLevel::Scalar),
        _ => assert!(simd::enabled_tables()
            .iter()
            .any(|t| t.level == resolved.level)),
    }
}
