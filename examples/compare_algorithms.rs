//! Compare the NSG against the strongest baselines of the paper (HNSW, the
//! kNN-graph search of KGraph, and Faiss-style IVF-PQ) on the same dataset —
//! a miniature of Figure 6 / Figure 7.
//!
//! ```sh
//! cargo run --release --example compare_algorithms
//! ```

use nsg::baselines::{HnswParams, IvfPqParams, KGraphParams};
use nsg::prelude::*;
use std::sync::Arc;
use std::time::Instant;

fn sweep(name: &str, index: &dyn AnnIndex, queries: &VectorSet, gt: &nsg::vectors::ground_truth::GroundTruth, efforts: &[usize]) {
    // One reused context across the whole sweep: the allocation-free path.
    let mut ctx = index.new_context();
    for &effort in efforts {
        let request = SearchRequest::new(10).with_effort(effort);
        let t = Instant::now();
        let results: Vec<Vec<u32>> = (0..queries.len())
            .map(|q| neighbor::ids(index.search_into(&mut ctx, &request, queries.get(q))))
            .collect();
        let qps = queries.len() as f64 / t.elapsed().as_secs_f64();
        let precision = mean_precision(&results, gt, 10);
        println!("{name:<12} effort {effort:>4}: precision {precision:.3}  qps {qps:>8.0}");
    }
}

fn main() {
    let (base, queries) = base_and_queries(SyntheticKind::DeepLike, 6000, 100, 7);
    let base = Arc::new(base);
    let gt = exact_knn(&base, &queries, 10, &SquaredEuclidean);
    println!(
        "dataset: {} deep-like vectors of dim {} (stand-in for DEEP100M)\n",
        base.len(),
        base.dim()
    );

    let t = Instant::now();
    let nsg = NsgIndex::build(Arc::clone(&base), SquaredEuclidean, NsgParams::default());
    println!("NSG    built in {:.2?} ({} KiB)", t.elapsed(), nsg.memory_bytes() / 1024);

    let t = Instant::now();
    let hnsw = HnswIndex::build(Arc::clone(&base), SquaredEuclidean, HnswParams::default());
    println!("HNSW   built in {:.2?} ({} KiB)", t.elapsed(), hnsw.memory_bytes() / 1024);

    let t = Instant::now();
    let kgraph = KGraphIndex::build(Arc::clone(&base), SquaredEuclidean, KGraphParams::default());
    println!("KGraph built in {:.2?} ({} KiB)", t.elapsed(), kgraph.memory_bytes() / 1024);

    let t = Instant::now();
    let ivfpq = IvfPq::build(Arc::clone(&base), SquaredEuclidean, IvfPqParams::default());
    println!("IVFPQ  built in {:.2?} ({} KiB)\n", t.elapsed(), ivfpq.memory_bytes() / 1024);

    let graph_efforts = [20usize, 60, 150, 300];
    sweep("NSG", &nsg, &queries, &gt, &graph_efforts);
    sweep("HNSW", &hnsw, &queries, &gt, &graph_efforts);
    sweep("KGraph", &kgraph, &queries, &gt, &graph_efforts);
    sweep("IVFPQ", &ivfpq, &queries, &gt, &[2, 8, 16, 32]);

    println!("\nExpected shape (as in the paper): NSG and HNSW dominate in the high-precision");
    println!("region; KGraph needs much larger pools; IVFPQ saturates below the graph methods.");
}
