//! The theory side of the paper on a small point set: build the exact MRNG
//! and the exact RNG, verify the MRNG's monotonicity (Theorem 3) and the
//! RNG's lack of it (Figure 3), and show that greedy search on the MRNG never
//! needs backtracking (Theorem 1).
//!
//! ```sh
//! cargo run --release --example mrng_theory
//! ```

use nsg::core::mrng::{build_mrng, build_rng_graph, greedy_reaches, monotonic_pair_fraction, MrngParams};
use nsg::prelude::*;

fn main() {
    let (base, _) = base_and_queries(SyntheticKind::RandUniform, 400, 1, 5);
    println!("point set: {} uniform points of dim {}\n", base.len(), base.dim());

    let mrng = build_mrng(&base, MrngParams::default(), &SquaredEuclidean);
    let rng = build_rng_graph(&base, &SquaredEuclidean);
    println!(
        "MRNG: avg out-degree {:.1}, max out-degree {}",
        mrng.average_out_degree(),
        mrng.max_out_degree()
    );
    println!(
        "RNG:  avg out-degree {:.1}, max out-degree {}\n",
        rng.average_out_degree(),
        rng.max_out_degree()
    );

    let mono_mrng = monotonic_pair_fraction(&mrng, &base, &SquaredEuclidean);
    let mono_rng = monotonic_pair_fraction(&rng, &base, &SquaredEuclidean);
    println!("fraction of node pairs with a monotonic path:");
    println!("  MRNG: {mono_mrng:.4}   (Theorem 3 requires exactly 1.0)");
    println!("  RNG:  {mono_rng:.4}   (strictly below 1.0 in general — Figure 3)\n");

    // Theorem 1: greedy descent (pool size 1, no backtracking) always reaches
    // the target on an MSNET.
    let mut greedy_failures = 0;
    for p in 0..base.len() as u32 {
        for q in (0..base.len() as u32).step_by(7) {
            if !greedy_reaches(&mrng, &base, p, q, &SquaredEuclidean) {
                greedy_failures += 1;
            }
        }
    }
    println!("greedy-descent failures on the MRNG: {greedy_failures} (Theorem 1 predicts 0)");
}
