//! Quickstart: build an NSG over synthetic SIFT-like descriptors, run a batch
//! of 10-NN queries through a reused search context, and report precision,
//! throughput and per-query search cost.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use nsg::prelude::*;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    // 1. Data: 5,000 base vectors and 100 held-out queries from the same
    //    distribution (a laptop-scale stand-in for SIFT1M).
    let (base, queries) = base_and_queries(SyntheticKind::SiftLike, 5000, 100, 42);
    let base = Arc::new(base);
    println!("base: {} vectors of dim {}", base.len(), base.dim());

    // 2. Exact ground truth for precision measurement (Eq. 1 of the paper).
    let k = 10;
    let gt = exact_knn(&base, &queries, k, &SquaredEuclidean);

    // 3. Build the NSG (Algorithm 2: kNN graph -> navigating node ->
    //    search-collect-select -> DFS tree spanning).
    let t0 = Instant::now();
    let index = NsgIndex::build(Arc::clone(&base), SquaredEuclidean, NsgParams::default());
    println!(
        "NSG built in {:.2?}: avg out-degree {:.1}, max out-degree {}, navigating node {}",
        t0.elapsed(),
        index.graph().average_out_degree(),
        index.graph().max_out_degree(),
        index.navigating_node()
    );

    // 4. Serving loop: one reusable context, swept over a few candidate-pool
    //    sizes (the effort knob of Figure 6). After the first query warms the
    //    context, each search performs zero heap allocation.
    let mut ctx = index.new_context();
    for effort in [20usize, 50, 100, 200] {
        let request = SearchRequest::new(k).with_effort(effort).with_stats();
        let mut results: Vec<Vec<u32>> = Vec::with_capacity(queries.len());
        let mut distance_computations = 0u64;
        let t = Instant::now();
        for q in 0..queries.len() {
            let hits = index.search_into(&mut ctx, &request, queries.get(q));
            results.push(hits.iter().map(|nb| nb.id).collect());
            distance_computations += ctx.stats().distance_computations;
        }
        let elapsed = t.elapsed();
        let precision = mean_precision(&results, &gt, k);
        println!(
            "pool size {effort:>4}: precision {:.3}, {:>7.0} queries/s, {:>5.0} distance calcs/query",
            precision,
            queries.len() as f64 / elapsed.as_secs_f64(),
            distance_computations as f64 / queries.len() as f64,
        );
    }

    // 5. The same queries on the parallel batch path (one context per worker
    //    thread); results arrive in query order with scored neighbors.
    let request = SearchRequest::new(k).with_effort(100);
    let t = Instant::now();
    let batch = index.search_batch(&queries, &request);
    println!(
        "batch path: {} queries in {:.2?}; best hit of query 0 is id {} at distance {:.1}",
        batch.len(),
        t.elapsed(),
        batch[0][0].id,
        batch[0][0].dist,
    );
}
