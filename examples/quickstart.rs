//! Quickstart: build an NSG over synthetic SIFT-like descriptors, run a batch
//! of 10-NN queries, and report precision and throughput.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use nsg::prelude::*;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    // 1. Data: 5,000 base vectors and 100 held-out queries from the same
    //    distribution (a laptop-scale stand-in for SIFT1M).
    let (base, queries) = base_and_queries(SyntheticKind::SiftLike, 5000, 100, 42);
    let base = Arc::new(base);
    println!("base: {} vectors of dim {}", base.len(), base.dim());

    // 2. Exact ground truth for precision measurement (Eq. 1 of the paper).
    let k = 10;
    let gt = exact_knn(&base, &queries, k, &SquaredEuclidean);

    // 3. Build the NSG (Algorithm 2: kNN graph -> navigating node ->
    //    search-collect-select -> DFS tree spanning).
    let t0 = Instant::now();
    let index = NsgIndex::build(Arc::clone(&base), SquaredEuclidean, NsgParams::default());
    println!(
        "NSG built in {:.2?}: avg out-degree {:.1}, max out-degree {}, navigating node {}",
        t0.elapsed(),
        index.graph().average_out_degree(),
        index.graph().max_out_degree(),
        index.navigating_node()
    );

    // 4. Search with a few candidate-pool sizes (the effort knob of Figure 6).
    for effort in [20usize, 50, 100, 200] {
        let t = Instant::now();
        let results: Vec<Vec<u32>> = (0..queries.len())
            .map(|q| index.search(queries.get(q), k, SearchQuality::new(effort)))
            .collect();
        let elapsed = t.elapsed();
        let precision = mean_precision(&results, &gt, k);
        println!(
            "pool size {effort:>4}: precision {:.3}, {:.0} queries/s",
            precision,
            queries.len() as f64 / elapsed.as_secs_f64()
        );
    }
}
