//! Serving quickstart: an embedded query service over a live NSG index —
//! concurrent clients, a hot-swap re-index behind the traffic, and the SLO
//! metrics readout.
//!
//! Run with `cargo run --release --example serving`.

use nsg::prelude::*;
use std::sync::Arc;
use std::time::Duration;

fn build_index(base: Arc<VectorSet>, seed: u64) -> Arc<dyn AnnIndex> {
    Arc::new(NsgIndex::build(
        base,
        SquaredEuclidean,
        NsgParams {
            build_pool_size: 40,
            max_degree: 24,
            knn: NnDescentParams { k: 30, ..Default::default() },
            reverse_insert: true,
            seed,
        },
    ))
}

fn main() {
    // A SIFT-like stand-in corpus and its query stream.
    let (base, queries) = base_and_queries(SyntheticKind::SiftLike, 4000, 64, 42);
    let base = Arc::new(base);
    let queries = Arc::new(queries);

    // 1. Start the service: worker threads (one pinned search context each)
    //    behind a bounded admission queue.
    let server = Arc::new(Server::start(
        build_index(Arc::clone(&base), 1),
        ServerConfig::with_workers(2).queue_capacity(128).max_batch(4),
    ));
    println!("serving generation {} on 2 workers", server.handle().generation());

    // 2. Concurrent clients: each holds one reusable ResponseSlot — the warm
    //    round trip allocates nothing on either side.
    let clients: Vec<_> = (0..4)
        .map(|c| {
            let server = Arc::clone(&server);
            let queries = Arc::clone(&queries);
            std::thread::spawn(move || {
                let slot = Arc::new(ResponseSlot::new());
                let request = SearchRequest::new(10).with_effort(80).with_stats();
                for q in 0..200 {
                    let query = queries.get((c * 17 + q) % queries.len());
                    // A 5ms deadline: if the service cannot serve in time,
                    // shed the request instead of answering too late.
                    match server.try_submit(&slot, query, &request, Some(Duration::from_millis(5))) {
                        Ok(()) => match slot.wait() {
                            Ok(response) => {
                                assert!(response.neighbors().len() == 10);
                            }
                            Err(ServeError::DeadlineExceeded) => {}
                            Err(e) => panic!("client {c}: {e}"),
                        },
                        Err(ServeError::Overloaded) => {
                            // Backpressure: back off and retry later.
                            std::thread::sleep(Duration::from_micros(200));
                        }
                        Err(e) => panic!("client {c}: {e}"),
                    }
                }
            })
        })
        .collect();

    // 3. Meanwhile, re-index behind the live traffic: build a fresh index and
    //    swap it in atomically. In-flight queries finish on the old snapshot;
    //    the next query sees the new generation.
    let rebuilt = build_index(Arc::clone(&base), 2);
    let displaced = server.handle().swap(rebuilt);
    println!(
        "hot-swapped: generation {} -> {} (old snapshot retires when its last reader finishes)",
        displaced.generation,
        server.handle().generation()
    );

    for client in clients {
        client.join().unwrap();
    }

    // 4. The SLO readout: latency percentiles, throughput, shed load.
    let snapshot = server.metrics().snapshot();
    println!("\nmetrics: {snapshot}");
    assert!(snapshot.completed > 0);
    println!(
        "p99 within {}µs at {:.0} qps; {} rejected, {} past deadline",
        snapshot.p99.as_micros(),
        snapshot.qps,
        snapshot.rejected,
        snapshot.expired
    );
}
