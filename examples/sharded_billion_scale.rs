//! The distributed-search design of §4.2 / §4.3 in miniature: partition a
//! large collection into shards, build one NSG per shard, answer queries by
//! searching every shard and merging, and persist / reload the per-shard
//! graphs with the compact binary format.
//!
//! ```sh
//! cargo run --release --example sharded_billion_scale
//! ```

use nsg::core::serialize::{graph_from_bytes, graph_to_bytes};
use nsg::prelude::*;
use std::time::Instant;

fn main() {
    // Stand-in for the e-commerce collection: 12,000 vectors, 6 shards
    // (the paper's Taobao deployment uses 12 and 32 partitions).
    let (base, queries) = base_and_queries(SyntheticKind::EcommerceLike, 12_000, 50, 11);
    let k = 10;
    let gt = exact_knn(&base, &queries, k, &SquaredEuclidean);

    let t = Instant::now();
    let sharded = ShardedNsg::build(&base, SquaredEuclidean, NsgParams::default(), 6, 3);
    println!(
        "built {} shard NSGs over {} vectors in {:.2?} (total index {} KiB)",
        sharded.num_shards(),
        base.len(),
        t.elapsed(),
        sharded.memory_bytes() / 1024
    );

    // Search: every shard is probed inside one reused context and the
    // per-shard answers are merged into globally-indexed scored neighbors.
    let request = SearchRequest::new(k).with_effort(100);
    let mut ctx = sharded.new_context();
    let t = Instant::now();
    let results: Vec<Vec<u32>> = (0..queries.len())
        .map(|q| neighbor::ids(sharded.search_into(&mut ctx, &request, queries.get(q))))
        .collect();
    let elapsed = t.elapsed();
    println!(
        "merged search: precision {:.3}, {:.2} ms/query",
        mean_precision(&results, &gt, k),
        elapsed.as_secs_f64() * 1e3 / queries.len() as f64
    );

    // Persist each shard's graph with the compact binary layout and reload it,
    // as a production deployment would ship indices to serving machines.
    let mut total_bytes = 0usize;
    for (i, shard) in sharded.shards().iter().enumerate() {
        let bytes = graph_to_bytes(shard.graph(), shard.navigating_node()).expect("fits the format");
        total_bytes += bytes.len();
        let (graph, nav) = graph_from_bytes(&bytes).expect("round-trip");
        assert_eq!(&graph, shard.graph());
        assert_eq!(nav, shard.navigating_node());
        if i == 0 {
            println!("shard 0 serialized graph: {} KiB", bytes.len() / 1024);
        }
    }
    println!("all {} shard graphs serialize/deserialize losslessly ({} KiB total)", sharded.num_shards(), total_bytes / 1024);
}
