//! Offline stand-in for [bytes](https://crates.io/crates/bytes).
//!
//! Implements exactly the surface `nsg-core::serialize` consumes: a `Buf`
//! trait over `&[u8]` for cursor-style little-endian reads, a `BufMut` trait
//! with little-endian writes, and `BytesMut` → `Bytes` freezing. Backed by
//! plain `Vec<u8>`/`Arc` storage rather than bytes' refcounted slabs — the
//! semantics the serializer relies on are identical.

use std::ops::Deref;

/// Cursor-style sequential reads, mirroring `bytes::Buf`.
pub trait Buf {
    fn remaining(&self) -> usize;

    fn chunk(&self) -> &[u8];

    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    fn get_u32_le(&mut self) -> u32 {
        assert!(self.remaining() >= 4, "buffer underflow reading u32");
        let v = u32::from_le_bytes(self.chunk()[..4].try_into().unwrap());
        self.advance(4);
        v
    }

    fn get_u64_le(&mut self) -> u64 {
        assert!(self.remaining() >= 8, "buffer underflow reading u64");
        let v = u64::from_le_bytes(self.chunk()[..8].try_into().unwrap());
        self.advance(8);
        v
    }

    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Sequential appends, mirroring `bytes::BufMut`.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Growable byte buffer, mirroring `bytes::BytesMut`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            inner: Vec::with_capacity(capacity),
        }
    }

    pub fn len(&self) -> usize {
        self.inner.len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Converts the mutable buffer into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            inner: self.inner.into(),
        }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

/// Cheaply cloneable immutable byte buffer, mirroring `bytes::Bytes`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    inner: std::sync::Arc<[u8]>,
}

impl Bytes {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self { inner: data.into() }
    }

    pub fn len(&self) -> usize {
        self.inner.len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.inner.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self { inner: v.into() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn little_endian_roundtrip() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u32_le(7);
        let frozen = buf.freeze();
        let mut cursor: &[u8] = &frozen;
        assert_eq!(cursor.remaining(), 8);
        assert_eq!(cursor.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(cursor.get_u32_le(), 7);
        assert_eq!(cursor.remaining(), 0);
    }

    #[test]
    fn slice_buf_advances() {
        let data = [1u8, 0, 0, 0, 2];
        let mut cursor: &[u8] = &data;
        assert_eq!(cursor.get_u32_le(), 1);
        assert_eq!(cursor.get_u8(), 2);
        assert!(!cursor.has_remaining());
    }
}
