//! Offline stand-in for [criterion](https://crates.io/crates/criterion).
//!
//! Provides the subset the workspace benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `Bencher::iter`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros — with a simple wall-clock measurement loop that
//! prints a mean ns/iter per benchmark. No statistics, plots, or CLI beyond
//! ignoring the arguments cargo passes to bench binaries.

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// Harness entry point, mirroring `criterion::Criterion`.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.to_string(), self.sample_size, &mut f);
        self
    }
}

/// Named collection of related benchmarks, mirroring
/// `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = Some(n);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.effective_sample_size(), &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        let samples = self.effective_sample_size();
        let mut adapter = |b: &mut Bencher| f(b, input);
        run_one(&label, samples, &mut adapter);
        self
    }

    pub fn finish(self) {}

    fn effective_sample_size(&self) -> usize {
        self.sample_size.unwrap_or(self.criterion.sample_size)
    }
}

/// Benchmark identifier composed of a function name and a parameter,
/// mirroring `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            function: String::new(),
            parameter: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.function.is_empty() {
            write!(f, "{}", self.parameter)
        } else {
            write!(f, "{}/{}", self.function, self.parameter)
        }
    }
}

/// Measurement driver handed to each benchmark closure.
pub struct Bencher {
    samples: usize,
    total_nanos: u128,
    iterations: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One warm-up call, then `samples` timed calls.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.total_nanos += start.elapsed().as_nanos();
        self.iterations += self.samples as u64;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, samples: usize, f: &mut F) {
    let mut bencher = Bencher {
        samples,
        total_nanos: 0,
        iterations: 0,
    };
    f(&mut bencher);
    let mean = if bencher.iterations == 0 {
        0
    } else {
        bencher.total_nanos / bencher.iterations as u128
    };
    println!("bench {label:<50} {mean:>12} ns/iter ({} iters)", bencher.iterations);
}

/// Mirrors `criterion::criterion_group!` in both its list and
/// `name/config/targets` forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Mirrors `criterion::criterion_main!` — generates `main`, ignoring the
/// arguments cargo passes to bench binaries.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2)));
        group.bench_with_input(BenchmarkId::new("mul", 3), &3u64, |b, &x| {
            b.iter(|| black_box(x) * 2)
        });
        group.finish();
    }

    #[test]
    fn harness_runs_benches() {
        let mut criterion = Criterion::default().sample_size(5);
        sample_bench(&mut criterion);
        criterion.bench_function("top_level", |b| b.iter(|| black_box(0u8)));
    }

    criterion_group!(quick, sample_bench);
    criterion_group! {
        name = configured;
        config = Criterion::default().sample_size(3);
        targets = sample_bench,
    }

    #[test]
    fn groups_are_callable() {
        quick();
        configured();
    }
}
