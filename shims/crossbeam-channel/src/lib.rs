//! Offline stand-in for
//! [crossbeam-channel](https://crates.io/crates/crossbeam-channel).
//!
//! The build container has no crates.io access, so this shim provides the
//! subset of the crossbeam-channel API the workspace uses — [`bounded`] and
//! [`unbounded`] multi-producer **multi-consumer** channels with blocking,
//! non-blocking and timed operations on both ends — implemented over one
//! `std::sync::Mutex<VecDeque>` plus two condvars per channel. The real crate
//! is lock-free; the shim trades that for simplicity while keeping the exact
//! semantics the serving subsystem depends on:
//!
//! * `try_send` on a full bounded channel fails with [`TrySendError::Full`]
//!   **without blocking** — the backpressure signal `nsg-serve` turns into an
//!   `Overloaded` rejection,
//! * a bounded channel's buffer is allocated once at construction, so
//!   enqueueing within capacity never allocates (the served-query allocation
//!   guard relies on this),
//! * receivers drain every message already buffered before reporting
//!   disconnection, so dropping all senders is a graceful shutdown signal
//!   that loses no accepted work.
//!
//! Swapping the real crate back in is a one-line `[workspace.dependencies]`
//! change.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Error of a blocking [`Sender::send`]: every receiver is gone; the
/// unsendable message is handed back.
#[derive(PartialEq, Eq, Clone, Copy)]
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

impl<T> std::error::Error for SendError<T> {}

/// Error of a non-blocking [`Sender::try_send`].
#[derive(PartialEq, Eq, Clone, Copy)]
pub enum TrySendError<T> {
    /// The bounded buffer is at capacity; the message is handed back.
    Full(T),
    /// Every receiver is gone; the message is handed back.
    Disconnected(T),
}

impl<T> TrySendError<T> {
    /// Recovers the message that could not be sent.
    pub fn into_inner(self) -> T {
        match self {
            TrySendError::Full(t) | TrySendError::Disconnected(t) => t,
        }
    }

    /// Whether the failure was a full buffer (backpressure, not shutdown).
    pub fn is_full(&self) -> bool {
        matches!(self, TrySendError::Full(_))
    }
}

impl<T> fmt::Debug for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => f.write_str("Full(..)"),
            TrySendError::Disconnected(_) => f.write_str("Disconnected(..)"),
        }
    }
}

impl<T> fmt::Display for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => f.write_str("sending on a full channel"),
            TrySendError::Disconnected(_) => f.write_str("sending on a disconnected channel"),
        }
    }
}

impl<T> std::error::Error for TrySendError<T> {}

/// Error of a blocking [`Receiver::recv`]: the channel is empty and every
/// sender is gone.
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error of a non-blocking [`Receiver::try_recv`].
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub enum TryRecvError {
    /// Nothing buffered right now (senders may still produce).
    Empty,
    /// Nothing buffered and every sender is gone.
    Disconnected,
}

impl fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryRecvError::Empty => f.write_str("receiving on an empty channel"),
            TryRecvError::Disconnected => {
                f.write_str("receiving on an empty and disconnected channel")
            }
        }
    }
}

impl std::error::Error for TryRecvError {}

/// Error of a timed [`Receiver::recv_timeout`].
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub enum RecvTimeoutError {
    /// The timeout elapsed with nothing to receive.
    Timeout,
    /// Nothing buffered and every sender is gone.
    Disconnected,
}

impl fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvTimeoutError::Timeout => f.write_str("timed out waiting on a channel"),
            RecvTimeoutError::Disconnected => {
                f.write_str("receiving on an empty and disconnected channel")
            }
        }
    }
}

impl std::error::Error for RecvTimeoutError {}

/// Channel state behind the mutex: the buffer plus liveness counts of both
/// ends.
struct Inner<T> {
    queue: VecDeque<T>,
    /// `Some(cap)` for bounded channels; `None` never applies backpressure.
    capacity: Option<usize>,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    inner: Mutex<Inner<T>>,
    /// Signalled when a message is enqueued or the last sender leaves.
    not_empty: Condvar,
    /// Signalled when a message is dequeued or the last receiver leaves.
    not_full: Condvar,
}

impl<T> Shared<T> {
    fn lock(&self) -> std::sync::MutexGuard<'_, Inner<T>> {
        // The shim never panics while holding the lock, but a panicking user
        // closure on another thread must not wedge the channel.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Creates a channel whose buffer holds at most `cap` messages (clamped to at
/// least 1; the real crate's zero-capacity rendezvous mode is not needed
/// here). The buffer is allocated up front, so sends within capacity never
/// allocate.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    channel(Some(cap.max(1)))
}

/// Creates a channel with an unbounded buffer; `send` never blocks.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    channel(None)
}

fn channel<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        inner: Mutex::new(Inner {
            queue: match capacity {
                Some(cap) => VecDeque::with_capacity(cap),
                None => VecDeque::new(),
            },
            capacity,
            senders: 1,
            receivers: 1,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        Sender { shared: Arc::clone(&shared) },
        Receiver { shared },
    )
}

/// The producing end of a channel. Cloneable (multi-producer); the channel
/// disconnects for receivers when the last clone is dropped.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Sender<T> {
    /// Enqueues `msg`, blocking while a bounded buffer is full. Fails only
    /// when every receiver is gone.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut inner = self.shared.lock();
        loop {
            if inner.receivers == 0 {
                return Err(SendError(msg));
            }
            let full = inner.capacity.is_some_and(|cap| inner.queue.len() >= cap);
            if !full {
                inner.queue.push_back(msg);
                drop(inner);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            inner = self
                .shared
                .not_full
                .wait(inner)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Enqueues `msg` without blocking; a full bounded buffer fails with
    /// [`TrySendError::Full`] — the backpressure signal.
    pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
        let mut inner = self.shared.lock();
        if inner.receivers == 0 {
            return Err(TrySendError::Disconnected(msg));
        }
        if inner.capacity.is_some_and(|cap| inner.queue.len() >= cap) {
            return Err(TrySendError::Full(msg));
        }
        inner.queue.push_back(msg);
        drop(inner);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Number of messages currently buffered.
    pub fn len(&self) -> usize {
        self.shared.lock().queue.len()
    }

    /// Whether the buffer is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The buffer capacity (`None` for unbounded channels).
    pub fn capacity(&self) -> Option<usize> {
        self.shared.lock().capacity
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.lock().senders += 1;
        Self { shared: Arc::clone(&self.shared) }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut inner = self.shared.lock();
        inner.senders -= 1;
        let last = inner.senders == 0;
        drop(inner);
        if last {
            // Wake every blocked receiver so it can observe disconnection.
            self.shared.not_empty.notify_all();
        }
    }
}

/// The consuming end of a channel. Cloneable (multi-consumer: each message is
/// delivered to exactly one receiver); the channel disconnects for senders
/// when the last clone is dropped.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Receiver<T> {
    /// Dequeues the oldest message, blocking while the channel is empty.
    /// Fails only once the channel is empty **and** every sender is gone —
    /// buffered messages are always drained first.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut inner = self.shared.lock();
        loop {
            if let Some(msg) = inner.queue.pop_front() {
                drop(inner);
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if inner.senders == 0 {
                return Err(RecvError);
            }
            inner = self
                .shared
                .not_empty
                .wait(inner)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Dequeues the oldest message without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut inner = self.shared.lock();
        if let Some(msg) = inner.queue.pop_front() {
            drop(inner);
            self.shared.not_full.notify_one();
            return Ok(msg);
        }
        if inner.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Dequeues the oldest message, blocking at most `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut inner = self.shared.lock();
        loop {
            if let Some(msg) = inner.queue.pop_front() {
                drop(inner);
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if inner.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            let Some(remaining) = deadline.checked_duration_since(now).filter(|d| !d.is_zero())
            else {
                return Err(RecvTimeoutError::Timeout);
            };
            let (guard, _) = self
                .shared
                .not_empty
                .wait_timeout(inner, remaining)
                .unwrap_or_else(|e| e.into_inner());
            inner = guard;
        }
    }

    /// Number of messages currently buffered.
    pub fn len(&self) -> usize {
        self.shared.lock().queue.len()
    }

    /// Whether the buffer is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.lock().receivers += 1;
        Self { shared: Arc::clone(&self.shared) }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut inner = self.shared.lock();
        inner.receivers -= 1;
        let last = inner.receivers == 0;
        drop(inner);
        if last {
            // Wake every blocked sender so it can observe disconnection.
            self.shared.not_full.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn messages_arrive_in_order() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        let got: Vec<i32> = (0..10).map(|_| rx.recv().unwrap()).collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn bounded_try_send_reports_full_then_recovers() {
        let (tx, rx) = bounded(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        match tx.try_send(3) {
            Err(TrySendError::Full(v)) => assert_eq!(v, 3),
            other => panic!("expected Full, got {other:?}"),
        }
        assert!(tx.try_send(3).unwrap_err().is_full());
        assert_eq!(rx.recv(), Ok(1));
        tx.try_send(3).unwrap();
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
        assert_eq!(tx.capacity(), Some(2));
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let (tx, rx) = bounded(0);
        tx.try_send(7).unwrap();
        assert!(tx.try_send(8).unwrap_err().is_full());
        assert_eq!(rx.try_recv(), Ok(7));
    }

    #[test]
    fn dropping_all_senders_drains_then_disconnects() {
        let (tx, rx) = bounded::<u32>(8);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn dropping_all_receivers_fails_sends() {
        let (tx, rx) = bounded(1);
        drop(rx);
        assert_eq!(tx.send(5), Err(SendError(5)));
        match tx.try_send(6) {
            Err(TrySendError::Disconnected(v)) => assert_eq!(v, 6),
            other => panic!("expected Disconnected, got {other:?}"),
        }
    }

    #[test]
    fn recv_timeout_times_out_and_delivers() {
        let (tx, rx) = unbounded();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(9).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(9));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn blocked_sender_wakes_when_space_frees() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let t = thread::spawn(move || tx.send(2));
        thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(1));
        t.join().unwrap().unwrap();
        assert_eq!(rx.recv(), Ok(2));
    }

    #[test]
    fn mpmc_delivers_every_message_exactly_once() {
        let (tx, rx) = bounded::<u64>(16);
        let n: u64 = 4000;
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let tx = tx.clone();
                thread::spawn(move || {
                    for i in 0..n / 4 {
                        tx.send(p * (n / 4) + i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let rx = rx.clone();
                thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Ok(v) = rx.recv() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        drop(rx);
        for p in producers {
            p.join().unwrap();
        }
        let mut all: Vec<u64> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn bounded_send_within_capacity_does_not_grow_the_buffer() {
        // The serving alloc-guard depends on this: the queue is preallocated.
        let (tx, rx) = bounded::<usize>(64);
        for round in 0..10 {
            for i in 0..64 {
                tx.try_send(round * 64 + i).unwrap();
            }
            assert!(tx.try_send(0).unwrap_err().is_full());
            for _ in 0..64 {
                rx.try_recv().unwrap();
            }
        }
        assert!(rx.is_empty() && tx.is_empty());
    }
}
