//! Offline stand-in for a memory-mapping crate (the subset of `memmap2`'s
//! API the workspace consumes).
//!
//! [`Mmap::open`] maps a file read-only and derefs to `&[u8]`. Two backends
//! sit behind the identical API:
//!
//! - **Linux**: a hand-written `extern "C"` binding to `mmap(2)`/`munmap(2)`.
//!   The kernel returns page-aligned mappings (≥ 4 KiB), so the base address
//!   satisfies any alignment the snapshot format needs.
//! - **Fallback** (any platform, or on `mmap` failure): the file is read into
//!   a 64-byte-aligned heap buffer. Same API, same alignment guarantee, just
//!   an O(file) copy at open time.
//!
//! Which backend is live is observable via [`Mmap::is_mapped`], and the
//! fallback can be forced with [`Mmap::open_unmapped`] so tests exercise both
//! paths on every platform.
//!
//! Mappings are immutable (`PROT_READ`, `MAP_PRIVATE`) and the struct is
//! `Send + Sync`; callers share it behind an `Arc` and the last clone's drop
//! unmaps (or frees) the region.

use std::fs::File;
use std::io::{self, Read};
use std::path::Path;

/// Alignment guaranteed for the base address of every backing buffer.
///
/// `mmap(2)` returns page-aligned addresses; the fallback allocates with this
/// alignment explicitly. 64 bytes = one cache line, and the largest alignment
/// any snapshot section requires.
pub const BASE_ALIGN: usize = 64;

#[cfg(target_os = "linux")]
mod sys {
    //! Hand-written binding for the two syscalls this shim needs. Signatures
    //! match `man 2 mmap` on x86-64/AArch64 Linux, where `off_t` is 64-bit.

    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;
    pub const MAP_FAILED: *mut core::ffi::c_void = usize::MAX as *mut core::ffi::c_void;

    extern "C" {
        pub fn mmap(
            addr: *mut core::ffi::c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut core::ffi::c_void;

        pub fn munmap(addr: *mut core::ffi::c_void, len: usize) -> i32;
    }
}

enum Backing {
    /// A live `mmap(2)` mapping: base pointer and mapped length.
    #[cfg(target_os = "linux")]
    Mapped { ptr: *const u8, len: usize },
    /// Fallback: the file contents copied into a 64-byte-aligned heap buffer.
    /// `len == 0` is represented with a dangling (never dereferenced) pointer
    /// and no allocation.
    Owned { ptr: *const u8, len: usize },
}

/// A read-only view of a whole file, either memory-mapped or copied into an
/// aligned buffer. Derefs to `&[u8]`.
pub struct Mmap {
    backing: Backing,
}

// SAFETY: the backing region is immutable for the lifetime of the struct
// (PROT_READ private mapping, or a heap buffer no one else can reach), so
// sharing references across threads is safe; the struct owns the region
// exclusively, so moving it across threads is safe too.
unsafe impl Send for Mmap {}
// SAFETY: see the Send impl above — the region is immutable and owned.
unsafe impl Sync for Mmap {}

impl Mmap {
    /// Maps `path` read-only. On Linux this uses `mmap(2)`; elsewhere (or if
    /// the syscall fails, e.g. on a filesystem that cannot map) it falls back
    /// to [`Mmap::open_unmapped`].
    pub fn open(path: &Path) -> io::Result<Mmap> {
        let file = File::open(path)?;
        #[cfg(target_os = "linux")]
        {
            let len = file.metadata()?.len();
            let len = usize::try_from(len)
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "file exceeds usize"))?;
            // mmap(2) rejects zero-length mappings with EINVAL; an empty file
            // needs no backing storage at all.
            if len == 0 {
                return Ok(Mmap { backing: Backing::Owned { ptr: std::ptr::NonNull::<u8>::dangling().as_ptr(), len: 0 } });
            }
            use std::os::unix::io::AsRawFd;
            let fd = file.as_raw_fd();
            // SAFETY: `fd` is a valid open descriptor (`File` outlives the
            // call), `len` is the exact file length, and this requests a
            // fresh private read-only mapping at a kernel-chosen address,
            // valid until `munmap` in `Drop`. Closing the fd afterwards is
            // fine: POSIX keeps the mapping alive independently of it.
            let ptr = unsafe {
                sys::mmap(std::ptr::null_mut(), len, sys::PROT_READ, sys::MAP_PRIVATE, fd, 0)
            };
            if ptr != sys::MAP_FAILED {
                return Ok(Mmap { backing: Backing::Mapped { ptr: ptr as *const u8, len } });
            }
            // Fall through to the portable copy on failure.
        }
        Self::read_into_aligned(file)
    }

    /// Opens `path` through the portable fallback unconditionally: the file
    /// is copied into a 64-byte-aligned buffer. Useful for exercising the
    /// non-mmap path in tests and on platforms without `mmap(2)`.
    pub fn open_unmapped(path: &Path) -> io::Result<Mmap> {
        Self::read_into_aligned(File::open(path)?)
    }

    /// Copies `bytes` into a fresh 64-byte-aligned buffer behind the same
    /// API. Lets callers treat in-memory images (tests, freshly serialized
    /// snapshots) identically to mapped files.
    pub fn copy_from_slice(bytes: &[u8]) -> Mmap {
        let Ok(m) = Self::alloc_aligned(bytes.len()) else {
            // Only reachable when `bytes.len()` rounded to the alignment
            // overflows isize — impossible for a slice that already exists.
            unreachable!("slice length always forms a valid layout")
        };
        if let Backing::Owned { ptr, len } = &m.backing {
            if *len > 0 {
                // SAFETY: `ptr` points at `len == bytes.len()` freshly
                // allocated bytes disjoint from `bytes`; both regions are
                // valid for the full copy.
                unsafe { std::ptr::copy_nonoverlapping(bytes.as_ptr(), *ptr as *mut u8, *len) };
            }
        }
        m
    }

    /// Allocates an uninitialized owned backing of `len` bytes at
    /// [`BASE_ALIGN`]. The caller must fill it before the buffer escapes.
    fn alloc_aligned(len: usize) -> io::Result<Mmap> {
        if len == 0 {
            return Ok(Mmap { backing: Backing::Owned { ptr: std::ptr::NonNull::<u8>::dangling().as_ptr(), len: 0 } });
        }
        let layout = std::alloc::Layout::from_size_align(len, BASE_ALIGN)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "file too large to buffer"))?;
        // SAFETY: `layout` has non-zero size (len > 0 checked above) and a
        // valid power-of-two alignment.
        let ptr = unsafe { std::alloc::alloc(layout) };
        if ptr.is_null() {
            std::alloc::handle_alloc_error(layout);
        }
        Ok(Mmap { backing: Backing::Owned { ptr, len } })
    }

    fn read_into_aligned(mut file: File) -> io::Result<Mmap> {
        let len = file.metadata()?.len();
        let len = usize::try_from(len)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "file exceeds usize"))?;
        let m = Self::alloc_aligned(len)?;
        if len > 0 {
            let Backing::Owned { ptr, .. } = &m.backing else {
                unreachable!("alloc_aligned always returns an owned backing")
            };
            let ptr = *ptr;
            // SAFETY: `ptr` points at `len` freshly allocated bytes that
            // nothing else references yet; `m` owns them and frees them on
            // drop (including the early-return error path below).
            let buf = unsafe { std::slice::from_raw_parts_mut(ptr as *mut u8, len) };
            file.read_exact(buf)?;
        }
        Ok(m)
    }

    /// Whether this region is a live `mmap(2)` mapping (`true`) or the
    /// aligned-copy fallback (`false`).
    pub fn is_mapped(&self) -> bool {
        match self.backing {
            #[cfg(target_os = "linux")]
            Backing::Mapped { .. } => true,
            Backing::Owned { .. } => false,
        }
    }

    /// The mapped bytes.
    pub fn as_slice(&self) -> &[u8] {
        let (ptr, len) = match self.backing {
            #[cfg(target_os = "linux")]
            Backing::Mapped { ptr, len } => (ptr, len),
            Backing::Owned { ptr, len } => (ptr, len),
        };
        // SAFETY: `ptr` points at `len` initialized, immutable bytes owned by
        // this struct (mapping or heap buffer), valid for `&self`'s lifetime.
        unsafe { std::slice::from_raw_parts(ptr, len) }
    }

    /// Length of the region in bytes.
    pub fn len(&self) -> usize {
        match self.backing {
            #[cfg(target_os = "linux")]
            Backing::Mapped { len, .. } => len,
            Backing::Owned { len, .. } => len,
        }
    }

    /// Whether the region is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        match self.backing {
            #[cfg(target_os = "linux")]
            Backing::Mapped { ptr, len } => {
                // SAFETY: `ptr`/`len` are exactly what `mmap` returned for
                // this still-live mapping; no `&[u8]` borrows can outlive
                // `self` (Deref ties them to the struct's lifetime).
                unsafe {
                    sys::munmap(ptr as *mut core::ffi::c_void, len);
                }
            }
            Backing::Owned { ptr, len } => {
                if len > 0 {
                    // SAFETY: the buffer was allocated in `read_into_aligned`
                    // with this exact (size, BASE_ALIGN) layout and is freed
                    // exactly once, here.
                    unsafe {
                        let layout = std::alloc::Layout::from_size_align_unchecked(len, BASE_ALIGN);
                        std::alloc::dealloc(ptr as *mut u8, layout);
                    }
                }
            }
        }
    }
}

impl std::ops::Deref for Mmap {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::fmt::Debug for Mmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mmap")
            .field("len", &self.len())
            .field("mapped", &self.is_mapped())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn temp_file(name: &str, contents: &[u8]) -> std::path::PathBuf {
        let mut path = std::env::temp_dir();
        path.push(format!("mmap-shim-{}-{}", std::process::id(), name));
        let mut f = File::create(&path).unwrap();
        f.write_all(contents).unwrap();
        path
    }

    #[test]
    fn mapped_and_fallback_see_identical_bytes() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let path = temp_file("identical", &data);
        let mapped = Mmap::open(&path).unwrap();
        let copied = Mmap::open_unmapped(&path).unwrap();
        assert_eq!(&*mapped, &data[..]);
        assert_eq!(&*copied, &data[..]);
        assert!(!copied.is_mapped());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn base_address_is_aligned() {
        let path = temp_file("aligned", &[7u8; 4096]);
        for m in [Mmap::open(&path).unwrap(), Mmap::open_unmapped(&path).unwrap()] {
            assert_eq!(m.as_slice().as_ptr() as usize % BASE_ALIGN, 0);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_maps_to_empty_slice() {
        let path = temp_file("empty", &[]);
        for m in [Mmap::open(&path).unwrap(), Mmap::open_unmapped(&path).unwrap()] {
            assert!(m.is_empty());
            assert_eq!(m.len(), 0);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn copy_from_slice_is_aligned_and_identical() {
        let data: Vec<u8> = (0..200u8).collect();
        let m = Mmap::copy_from_slice(&data);
        assert_eq!(&*m, &data[..]);
        assert_eq!(m.as_slice().as_ptr() as usize % BASE_ALIGN, 0);
        assert!(!m.is_mapped());
        let empty = Mmap::copy_from_slice(&[]);
        assert!(empty.is_empty());
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let mut path = std::env::temp_dir();
        path.push("mmap-shim-definitely-missing");
        assert!(Mmap::open(&path).is_err());
        assert!(Mmap::open_unmapped(&path).is_err());
    }

    #[test]
    fn linux_open_prefers_the_real_mapping() {
        let path = temp_file("prefers", &[1u8; 64]);
        let m = Mmap::open(&path).unwrap();
        if cfg!(target_os = "linux") {
            assert!(m.is_mapped());
        }
        std::fs::remove_file(&path).ok();
    }
}
