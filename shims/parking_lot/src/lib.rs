//! Offline stand-in for [parking_lot](https://crates.io/crates/parking_lot).
//!
//! Wraps `std::sync` primitives behind parking_lot's signatures: `lock()` /
//! `read()` / `write()` return guards directly instead of `Result`s. Poisoned
//! locks are recovered with `into_inner` — matching parking_lot, which has no
//! poisoning at all.

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion lock with parking_lot's non-poisoning `lock()` signature.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        self.0.try_lock().ok()
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Reader-writer lock with parking_lot's non-poisoning `read()`/`write()`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_locks_without_result() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_reads_and_writes() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
