//! Offline stand-in for [proptest](https://crates.io/crates/proptest).
//!
//! A deterministic mini property-testing harness covering the surface the
//! workspace's `tests/properties.rs` uses:
//!
//! * [`Strategy`] with `prop_map` / `prop_flat_map`,
//! * range strategies for the integer and float primitives,
//! * tuple strategies (arity 2–4),
//! * [`collection::vec`] with exact or ranged sizes,
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! * [`prop_assert!`] / [`prop_assert_eq!`],
//! * [`ProptestConfig::with_cases`].
//!
//! Cases are generated from a per-case seeded PRNG, so failures reproduce
//! exactly on re-run. There is no shrinking: the failing case's number and
//! message are reported instead.

use rand::prelude::*;

/// Test-case RNG handed to strategies.
pub type TestRng = StdRng;

/// Harness configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { base: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))+) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
}

/// `Just`/constant strategy, mirroring `proptest::strategy::Just`.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Element-count specification accepted by [`vec`]: an exact size or a
    /// half-open range of sizes.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self { lo: r.start, hi: r.end }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.random_range(self.size.lo..self.size.hi);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Mirrors `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod test_runner {
    pub use crate::ProptestConfig as Config;
}

pub mod strategy {
    pub use crate::{FlatMap, Just, Map, Strategy};
}

pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

#[doc(hidden)]
pub mod __rt {
    pub use rand::{RngCore, SeedableRng};

    /// Derives the per-case RNG. Mixing in a stable hash of the property name
    /// decorrelates different properties run under the same case index.
    pub fn case_rng(name: &str, case: u64) -> crate::TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
        crate::TestRng::seed_from_u64(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

/// Property-test entry point, mirroring `proptest::proptest!`.
///
/// Each `fn name(arg in strategy, ..) { body }` becomes a `#[test]` running
/// `config.cases` deterministic cases; `prop_assert!` failures report the
/// case number so the run can be reproduced.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            for case in 0..config.cases as u64 {
                let mut __rng = $crate::__rt::case_rng(stringify!($name), case);
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut __rng);)*
                let outcome: ::std::result::Result<(), ::std::string::String> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(msg) = outcome {
                    panic!(
                        "property {} failed at case {}/{}: {}",
                        stringify!($name),
                        case,
                        config.cases,
                        msg
                    );
                }
            }
        }
    )*};
}

/// Mirrors `proptest::prop_assert!` — fails the current case (not the whole
/// process) with a formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {}", stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Mirrors `proptest::prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left), stringify!($right), l, r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    }};
}

/// Mirrors `proptest::prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} != {} (both: {:?})",
                stringify!($left), stringify!($right), l
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vecs_generate_in_bounds() {
        let mut rng = crate::__rt::case_rng("smoke", 0);
        for _ in 0..100 {
            let x = (1usize..5).generate(&mut rng);
            assert!((1..5).contains(&x));
            let f = (-1.0f32..1.0).generate(&mut rng);
            assert!((-1.0..1.0).contains(&f));
            let v = crate::collection::vec(0u32..10, 3usize).generate(&mut rng);
            assert_eq!(v.len(), 3);
            let v2 = crate::collection::vec(0u32..10, 0..4).generate(&mut rng);
            assert!(v2.len() < 4);
        }
    }

    #[test]
    fn generation_is_deterministic_per_case() {
        let a = crate::collection::vec(0u32..1000, 10usize)
            .generate(&mut crate::__rt::case_rng("det", 3));
        let b = crate::collection::vec(0u32..1000, 10usize)
            .generate(&mut crate::__rt::case_rng("det", 3));
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_round_trips(x in 0u32..100, pair in (0u32..10, 0.0f32..1.0)) {
            prop_assert!(x < 100);
            prop_assert!(pair.0 < 10, "pair.0 out of range: {}", pair.0);
            prop_assert_eq!(x, x);
            prop_assert_ne!(pair.1, 2.0);
        }

        #[test]
        fn flat_map_composes(v in (2usize..5).prop_flat_map(|n| crate::collection::vec(0u32..7, n))) {
            prop_assert!((2..5).contains(&v.len()));
            for x in &v {
                prop_assert!(*x < 7);
            }
        }
    }
}
