//! Offline stand-in for [rand](https://crates.io/crates/rand) 0.9.
//!
//! Provides `StdRng`, `SeedableRng`, `Rng` (`random`, `random_range`,
//! `random_bool`) and `seq::SliceRandom` (`shuffle`, `choose`) — the subset
//! this workspace uses. The generator is xoshiro256++ seeded through
//! splitmix64, which is plenty for reproducible experiments; it makes no
//! cryptographic claims.

/// A source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

/// Types constructible from a fixed-size seed, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = splitmix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = sm.to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
            sm = splitmix64(sm);
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Values drawable uniformly from an `RngCore` (stand-in for sampling from
/// rand's `StandardUniform` distribution).
pub trait Standard: Sized {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges a uniform value can be drawn from, mirroring `rand::distr::uniform::SampleRange`.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128).wrapping_sub(start as u128) + 1;
                start + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::draw(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// User-facing random-value methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn random<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    fn random_bool(&mut self, p: f64) -> bool {
        <f64 as Standard>::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// xoshiro256++ — the algorithm behind rand's (small) `StdRng` alternatives;
/// deterministic, fast, and good enough for experiment reproducibility.
#[derive(Debug, Clone)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl RngCore for Xoshiro256PlusPlus {
    fn next_u64(&mut self) -> u64 {
        let result = (self.s[0].wrapping_add(self.s[3]))
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for Xoshiro256PlusPlus {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
        }
        // Avoid the all-zero state, which is a fixed point of xoshiro.
        if s == [0; 4] {
            s = [
                splitmix64(1),
                splitmix64(2),
                splitmix64(3),
                splitmix64(4),
            ];
        }
        Self { s }
    }
}

pub mod rngs {
    /// The workspace's standard seeded generator.
    pub type StdRng = super::Xoshiro256PlusPlus;
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling/choosing, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn random_floats_are_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f32 = rng.random();
            assert!((0.0..1.0).contains(&x));
            let y: f64 = rng.random();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn random_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..500 {
            let v = rng.random_range(0..10usize);
            seen[v] = true;
            let f = rng.random_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
        assert!(seen.iter().all(|&s| s), "all values in a small range hit");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle of 100 elements left them sorted");
    }
}
