//! Offline stand-in for [rayon](https://crates.io/crates/rayon).
//!
//! The build container has no crates.io access, so this shim provides the
//! subset of rayon's API the workspace uses — `par_iter` / `into_par_iter`
//! from the prelude — implemented **sequentially** on top of the standard
//! iterator machinery. Because the "parallel" iterators are real `std`
//! iterators, every adapter (`map`, `filter`, `for_each`, `collect`, …)
//! works unchanged, and swapping the real rayon back in is a manifest-only
//! change.

/// Runs two closures (sequentially here; in parallel in real rayon) and
/// returns both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

/// Returns the number of "worker threads" — always 1 in the sequential shim.
pub fn current_num_threads() -> usize {
    1
}

pub mod iter {
    /// Anything that can be turned into an iterator can be turned into a
    /// "parallel" iterator. The iterator returned is the plain sequential one.
    pub trait IntoParallelIterator: IntoIterator + Sized {
        fn into_par_iter(self) -> Self::IntoIter {
            self.into_iter()
        }
    }

    impl<T: IntoIterator + Sized> IntoParallelIterator for T {}

    /// `par_iter()` — borrow-based variant, mirroring
    /// `rayon::iter::IntoParallelRefIterator`.
    pub trait IntoParallelRefIterator<'data> {
        type Iter: Iterator;
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, T: ?Sized + 'data> IntoParallelRefIterator<'data> for T
    where
        &'data T: IntoIterator,
    {
        type Iter = <&'data T as IntoIterator>::IntoIter;
        fn par_iter(&'data self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// `par_iter_mut()` — mutable-borrow variant, mirroring
    /// `rayon::iter::IntoParallelRefMutIterator`.
    pub trait IntoParallelRefMutIterator<'data> {
        type Iter: Iterator;
        fn par_iter_mut(&'data mut self) -> Self::Iter;
    }

    impl<'data, T: ?Sized + 'data> IntoParallelRefMutIterator<'data> for T
    where
        &'data mut T: IntoIterator,
    {
        type Iter = <&'data mut T as IntoIterator>::IntoIter;
        fn par_iter_mut(&'data mut self) -> Self::Iter {
            self.into_iter()
        }
    }
}

pub mod prelude {
    pub use crate::iter::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_behaves_like_iter() {
        let v = vec![1, 2, 3];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
        let sum: i32 = v.into_par_iter().sum();
        assert_eq!(sum, 6);
        let r: Vec<usize> = (0..4usize).into_par_iter().collect();
        assert_eq!(r, vec![0, 1, 2, 3]);
    }

    #[test]
    fn join_runs_both() {
        let (a, b) = crate::join(|| 1, || "x");
        assert_eq!((a, b), (1, "x"));
    }
}
