//! Offline stand-in for [rayon](https://crates.io/crates/rayon).
//!
//! The build container has no crates.io access, so this shim provides the
//! subset of rayon's API the workspace uses — `par_iter` / `into_par_iter` /
//! `par_chunks` from the prelude — implemented as **genuinely parallel**
//! fork/join over `std::thread::scope`: the source items are materialized,
//! split into one contiguous chunk per worker, and the adapter pipeline
//! (`map` / `filter` / `filter_map`) runs on every worker thread. Order is
//! preserved by terminal adapters (`collect` concatenates per-chunk results
//! in chunk order), so `map().collect()` pipelines stay deterministic
//! regardless of the worker count.
//!
//! The worker count defaults to [`std::thread::available_parallelism`] and
//! can be pinned with the `NSG_SHIM_THREADS` environment variable
//! (`NSG_SHIM_THREADS=1` gives fully deterministic sequential execution,
//! including for `for_each` pipelines that race on shared locks). Swapping
//! the real rayon back in remains a one-line `[workspace.dependencies]`
//! change.

use std::marker::PhantomData;
use std::sync::OnceLock;

/// Number of worker threads used by the shim's fork/join pools.
///
/// Reads `NSG_SHIM_THREADS` once (values below 1 are clamped to 1); falls
/// back to the machine's available parallelism.
pub fn current_num_threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        if let Ok(v) = std::env::var("NSG_SHIM_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                return n.max(1);
            }
        }
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    })
}

/// Runs two closures — in parallel on a scoped thread when more than one
/// worker is configured — and returns both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() > 1 {
        std::thread::scope(|s| {
            let hb = s.spawn(b);
            let ra = a();
            let rb = match hb.join() {
                Ok(v) => v,
                Err(p) => std::panic::resume_unwind(p),
            };
            (ra, rb)
        })
    } else {
        (a(), b())
    }
}

/// Applies `op` to every item on a scoped worker pool, preserving item order
/// in the output. `None` results are dropped (this is how `filter` /
/// `filter_map` compose into the pipeline).
fn run<S, T, F>(items: Vec<S>, op: &F) -> Vec<T>
where
    S: Send,
    T: Send,
    F: Fn(S) -> Option<T> + Sync,
{
    run_init(items, &|| (), &|_: &mut (), s| op(s))
}

/// The worker-pinned-state generalization of [`run`]: every worker calls
/// `init` **once**, then threads the resulting state mutably through `op` for
/// each item of its chunk — real rayon's `map_init` contract. State never
/// crosses threads (it is created and dropped on the worker), so it need not
/// be `Send`; output order is preserved exactly as in [`run`].
fn run_init<S, St, T, INIT, F>(items: Vec<S>, init: &INIT, op: &F) -> Vec<T>
where
    S: Send,
    T: Send,
    INIT: Fn() -> St + Sync,
    F: Fn(&mut St, S) -> Option<T> + Sync,
{
    let threads = current_num_threads();
    if threads <= 1 || items.len() <= 1 {
        let mut state = init();
        return items.into_iter().filter_map(|s| op(&mut state, s)).collect();
    }
    let chunk_size = items.len().div_ceil(threads);
    let mut out = Vec::with_capacity(items.len());
    std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(threads);
        let mut iter = items.into_iter();
        loop {
            let chunk: Vec<S> = iter.by_ref().take(chunk_size).collect();
            if chunk.is_empty() {
                break;
            }
            handles.push(s.spawn(move || {
                let mut state = init();
                chunk
                    .into_iter()
                    .filter_map(|item| op(&mut state, item))
                    .collect::<Vec<T>>()
            }));
        }
        for h in handles {
            match h.join() {
                Ok(part) => out.extend(part),
                Err(p) => std::panic::resume_unwind(p),
            }
        }
    });
    out
}

/// A materialized "parallel iterator": the source items plus the composed
/// per-item pipeline. Adapters compose the pipeline; terminal operations
/// (`collect`, `for_each`, `sum`, `count`) execute it on the worker pool.
pub struct ParIter<S, T, F>
where
    F: Fn(S) -> Option<T>,
{
    items: Vec<S>,
    op: F,
    _stage: PhantomData<fn(S) -> T>,
}

/// Entry-point pipeline type: the identity stage over freshly materialized
/// items.
pub type ParSource<S> = ParIter<S, S, fn(S) -> Option<S>>;

impl<S: Send> ParSource<S> {
    fn from_items(items: Vec<S>) -> Self {
        ParIter {
            items,
            op: Some,
            _stage: PhantomData,
        }
    }
}

impl<S, T, F> ParIter<S, T, F>
where
    S: Send,
    T: Send,
    F: Fn(S) -> Option<T> + Sync,
{
    /// Maps every item through `g` on the worker pool.
    pub fn map<U, G>(self, g: G) -> ParIter<S, U, impl Fn(S) -> Option<U> + Sync>
    where
        U: Send,
        G: Fn(T) -> U + Sync,
    {
        let op = self.op;
        ParIter {
            items: self.items,
            op: move |s| op(s).map(&g),
            _stage: PhantomData,
        }
    }

    /// Keeps only the items `p` accepts.
    pub fn filter<P>(self, p: P) -> ParIter<S, T, impl Fn(S) -> Option<T> + Sync>
    where
        P: Fn(&T) -> bool + Sync,
    {
        let op = self.op;
        ParIter {
            items: self.items,
            op: move |s| op(s).filter(|t| p(t)),
            _stage: PhantomData,
        }
    }

    /// `map` and `filter` in one step.
    pub fn filter_map<U, G>(self, g: G) -> ParIter<S, U, impl Fn(S) -> Option<U> + Sync>
    where
        U: Send,
        G: Fn(T) -> Option<U> + Sync,
    {
        let op = self.op;
        ParIter {
            items: self.items,
            op: move |s| op(s).and_then(&g),
            _stage: PhantomData,
        }
    }

    /// Maps every item through `g` with **worker-pinned state**: each worker
    /// thread calls `init` once and reuses the resulting state for every item
    /// it processes — real rayon's `map_init`. This is how expensive per-item
    /// scratch (a `SearchContext`, an RNG) is amortized to one instance per
    /// worker instead of one per item. Output order is preserved; the state
    /// stays on its worker, so results cannot depend on it unless `g` makes
    /// them (reset per item for determinism, as rayon's docs also warn).
    pub fn map_init<St, U, INIT, G>(
        self,
        init: INIT,
        g: G,
    ) -> ParInitIter<S, St, U, INIT, impl Fn(&mut St, S) -> Option<U> + Sync>
    where
        U: Send,
        INIT: Fn() -> St + Sync,
        G: Fn(&mut St, T) -> U + Sync,
    {
        let op = self.op;
        ParInitIter {
            items: self.items,
            init,
            op: move |state: &mut St, s| op(s).map(|t| g(state, t)),
            _stage: PhantomData,
        }
    }

    /// Runs `g` for every item on the worker pool. Side effects on shared
    /// state race across workers exactly as with real rayon; pin
    /// `NSG_SHIM_THREADS=1` for deterministic runs.
    pub fn for_each<G>(self, g: G)
    where
        G: Fn(T) + Sync,
    {
        let op = self.op;
        let _ = run(self.items, &move |s| -> Option<()> {
            if let Some(t) = op(s) {
                g(t);
            }
            None
        });
    }

    /// Executes the pipeline and collects the results in source order.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        run(self.items, &self.op).into_iter().collect()
    }

    /// Executes the pipeline and sums the results.
    pub fn sum<R>(self) -> R
    where
        R: std::iter::Sum<T> + Send,
    {
        run(self.items, &self.op).into_iter().sum()
    }

    /// Executes the pipeline and counts the surviving items.
    pub fn count(self) -> usize {
        run(self.items, &self.op).len()
    }
}

/// A pipeline whose final stage carries worker-pinned state (the result of
/// [`ParIter::map_init`]). Only terminal operations remain: the state is
/// mutable per worker, so further composition happens inside the `map_init`
/// closure itself.
pub struct ParInitIter<S, St, T, INIT, F>
where
    INIT: Fn() -> St,
    F: Fn(&mut St, S) -> Option<T>,
{
    items: Vec<S>,
    init: INIT,
    op: F,
    _stage: PhantomData<fn(St, S) -> T>,
}

impl<S, St, T, INIT, F> ParInitIter<S, St, T, INIT, F>
where
    S: Send,
    T: Send,
    INIT: Fn() -> St + Sync,
    F: Fn(&mut St, S) -> Option<T> + Sync,
{
    /// Executes the pipeline and collects the results in source order.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        run_init(self.items, &self.init, &self.op).into_iter().collect()
    }

    /// Executes the pipeline for its effects, discarding the mapped values
    /// (rayon expresses this as `for_each_init`; the shim reuses the
    /// `map_init` plumbing).
    pub fn for_each(self) {
        let op = self.op;
        let _ = run_init(self.items, &self.init, &move |state: &mut St, s| -> Option<()> {
            let _ = op(state, s);
            None
        });
    }
}

pub mod iter {
    use super::ParSource;

    /// Anything that can be turned into an iterator of `Send` items can be
    /// turned into a parallel iterator.
    pub trait IntoParallelIterator: IntoIterator + Sized
    where
        Self::Item: Send,
    {
        fn into_par_iter(self) -> ParSource<Self::Item> {
            ParSource::from_items(self.into_iter().collect())
        }
    }

    impl<T: IntoIterator + Sized> IntoParallelIterator for T where T::Item: Send {}

    /// `par_iter()` — borrow-based variant, mirroring
    /// `rayon::iter::IntoParallelRefIterator`.
    pub trait IntoParallelRefIterator<'data> {
        type Item: Send + 'data;
        fn par_iter(&'data self) -> ParSource<Self::Item>;
    }

    impl<'data, T: ?Sized + 'data> IntoParallelRefIterator<'data> for T
    where
        &'data T: IntoIterator,
        <&'data T as IntoIterator>::Item: Send,
    {
        type Item = <&'data T as IntoIterator>::Item;
        fn par_iter(&'data self) -> ParSource<Self::Item> {
            ParSource::from_items(self.into_iter().collect())
        }
    }

    /// `par_iter_mut()` — mutable-borrow variant, mirroring
    /// `rayon::iter::IntoParallelRefMutIterator`.
    pub trait IntoParallelRefMutIterator<'data> {
        type Item: Send + 'data;
        fn par_iter_mut(&'data mut self) -> ParSource<Self::Item>;
    }

    impl<'data, T: ?Sized + 'data> IntoParallelRefMutIterator<'data> for T
    where
        &'data mut T: IntoIterator,
        <&'data mut T as IntoIterator>::Item: Send,
    {
        type Item = <&'data mut T as IntoIterator>::Item;
        fn par_iter_mut(&'data mut self) -> ParSource<Self::Item> {
            ParSource::from_items(self.into_iter().collect())
        }
    }
}

pub mod slice {
    use super::ParSource;

    /// `par_chunks()` over slices, mirroring `rayon::slice::ParallelSlice`.
    pub trait ParallelSlice<T: Sync> {
        /// Splits the slice into contiguous chunks of at most `chunk_size`
        /// items, processed in parallel by the pipeline's terminal adapter.
        fn par_chunks(&self, chunk_size: usize) -> ParSource<&[T]>;
    }

    impl<T: Sync> ParallelSlice<T> for [T] {
        fn par_chunks(&self, chunk_size: usize) -> ParSource<&[T]> {
            ParSource::from_items(self.chunks(chunk_size.max(1)).collect())
        }
    }
}

pub mod prelude {
    pub use crate::iter::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator,
    };
    pub use crate::slice::ParallelSlice;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn par_iter_behaves_like_iter() {
        let v = vec![1, 2, 3];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
        let sum: i32 = v.into_par_iter().sum();
        assert_eq!(sum, 6);
        let r: Vec<usize> = (0..4usize).into_par_iter().collect();
        assert_eq!(r, vec![0, 1, 2, 3]);
    }

    #[test]
    fn collect_preserves_source_order_at_scale() {
        // Enough items that every worker gets a non-trivial chunk.
        let n = 10_000usize;
        let out: Vec<usize> = (0..n).into_par_iter().map(|x| x * x).collect();
        assert_eq!(out.len(), n);
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, i * i);
        }
    }

    #[test]
    fn filter_and_filter_map_compose() {
        let evens: Vec<usize> = (0..100usize).into_par_iter().filter(|&x| x % 2 == 0).collect();
        assert_eq!(evens.len(), 50);
        assert_eq!(evens[3], 6);
        let odds: Vec<usize> = (0..100usize)
            .into_par_iter()
            .filter_map(|x| if x % 2 == 1 { Some(x) } else { None })
            .collect();
        assert_eq!(odds[0], 1);
        let c = (0..1000usize).into_par_iter().filter(|&x| x < 10).count();
        assert_eq!(c, 10);
    }

    #[test]
    fn for_each_visits_every_item_exactly_once() {
        let hits = AtomicUsize::new(0);
        (0..5000usize).into_par_iter().for_each(|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 5000);
    }

    #[test]
    fn par_chunks_covers_the_slice_in_order() {
        let data: Vec<u32> = (0..103).collect();
        let chunk_sums: Vec<(usize, u32)> =
            data.par_chunks(10).map(|c| (c.len(), c.iter().sum())).collect();
        assert_eq!(chunk_sums.len(), 11);
        assert_eq!(chunk_sums[0], (10, (0..10).sum()));
        assert_eq!(chunk_sums[10], (3, 100 + 101 + 102));
        let total: u32 = chunk_sums.iter().map(|&(_, s)| s).sum();
        assert_eq!(total, (0..103).sum());
    }

    #[test]
    fn map_init_preserves_order_and_pins_state_per_worker() {
        // Count how many times init runs: at most once per worker, and far
        // fewer times than there are items.
        let inits = AtomicUsize::new(0);
        let out: Vec<usize> = (0..5000usize)
            .into_par_iter()
            .map_init(
                || {
                    inits.fetch_add(1, Ordering::Relaxed);
                    Vec::<usize>::new() // per-worker scratch, reused across items
                },
                |scratch, x| {
                    scratch.clear();
                    scratch.extend([x, x]);
                    scratch.iter().sum::<usize>()
                },
            )
            .collect();
        assert_eq!(out.len(), 5000);
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, 2 * i);
        }
        let n_inits = inits.load(Ordering::Relaxed);
        assert!(n_inits >= 1 && n_inits <= crate::current_num_threads());
    }

    #[test]
    fn map_init_for_each_visits_every_item() {
        let hits = AtomicUsize::new(0);
        (0..1000usize)
            .into_par_iter()
            .map_init(
                || 0usize,
                |state, _x| {
                    *state += 1;
                    hits.fetch_add(1, Ordering::Relaxed);
                },
            )
            .for_each();
        assert_eq!(hits.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn map_init_composes_after_map_and_filter() {
        let out: Vec<usize> = (0..100usize)
            .into_par_iter()
            .filter(|&x| x % 2 == 0)
            .map(|x| x + 1)
            .map_init(|| 0usize, |acc, x| {
                *acc += 1; // per-worker running count, must not affect order
                x * 10
            })
            .collect();
        assert_eq!(out.len(), 50);
        assert_eq!(out[0], 10);
        assert_eq!(out[49], 990);
    }

    #[test]
    fn join_runs_both() {
        let (a, b) = crate::join(|| 1, || "x");
        assert_eq!((a, b), (1, "x"));
    }

    #[test]
    fn thread_count_is_at_least_one() {
        assert!(crate::current_num_threads() >= 1);
    }
}
