//! Offline stand-in for [serde](https://crates.io/crates/serde).
//!
//! The workspace derives `Serialize`/`Deserialize` on its config and result
//! structs but never feeds them to a real serializer (the binary index format
//! in `nsg-core::serialize` is hand-rolled). This shim keeps the derive
//! surface compiling: marker traits plus no-op derive macros re-exported from
//! the sibling `serde_derive` shim.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de> {}

/// Marker trait mirroring `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}

pub mod de {
    pub use crate::{Deserialize, DeserializeOwned};
}

pub mod ser {
    pub use crate::Serialize;
}
