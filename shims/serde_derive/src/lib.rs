//! Offline stand-in for the `serde_derive` proc-macro crate.
//!
//! The workspace only uses `#[derive(Serialize, Deserialize)]` as a marker on
//! plain-old-data types (no `serde_json`/`bincode` consumer exists in the
//! offline image), so these derives expand to nothing. The `serde` helper
//! attribute is accepted and ignored so annotated fields still parse.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
