//! # nsg — Navigating Spreading-out Graph, reproduced in Rust
//!
//! An end-to-end reproduction of *Fast Approximate Nearest Neighbor Search
//! With The Navigating Spreading-out Graph* (Fu, Xiang, Wang, Cai — VLDB
//! 2019): the MRNG and NSG graph indices, the shared search-on-graph routine,
//! every baseline the paper compares against, and the experiment harness that
//! regenerates each table and figure of its evaluation.
//!
//! This umbrella crate re-exports the workspace members so applications can
//! depend on a single crate:
//!
//! * [`vectors`] — dense-vector substrate (storage, distances, I/O, synthetic
//!   datasets, ground truth, metrics, LID),
//! * [`knn`] — kNN-graph construction (NN-Descent and exact),
//! * [`core`] — MRNG, NSG, search-on-graph, graph analytics, serialization,
//!   sharded search,
//! * [`baselines`] — the compared methods (KD-trees, LSH, IVF-PQ, KGraph,
//!   Efanna, NSW, HNSW, FANNG, DPG, NSG-Naive, serial scan),
//! * [`eval`] — QPS/precision sweeps, scaling fits, report emission.
//!
//! ## Quickstart
//!
//! ```
//! use nsg::prelude::*;
//! use std::sync::Arc;
//!
//! // Index 2,000 synthetic SIFT-like vectors and run a 10-NN query.
//! let (base, queries) = base_and_queries(SyntheticKind::SiftLike, 2000, 10, 42);
//! let base = Arc::new(base);
//! let index = NsgIndex::build(Arc::clone(&base), SquaredEuclidean, NsgParams::default());
//! let neighbors = index.search(queries.get(0), 10, SearchQuality::new(100));
//! assert_eq!(neighbors.len(), 10);
//! ```

pub use nsg_baselines as baselines;
pub use nsg_core as core;
pub use nsg_eval as eval;
pub use nsg_knn as knn;
pub use nsg_vectors as vectors;

/// The most commonly used items, re-exported for `use nsg::prelude::*`.
pub mod prelude {
    pub use nsg_baselines::{
        DpgIndex, EfannaIndex, FanngIndex, HnswIndex, IvfPq, KGraphIndex, KdForest, LshIndex,
        NsgNaiveIndex, NswIndex, SerialScan,
    };
    pub use nsg_core::index::{AnnIndex, SearchQuality};
    pub use nsg_core::nsg::{NsgIndex, NsgParams};
    pub use nsg_core::search::{search_on_graph, SearchParams};
    pub use nsg_core::sharded::ShardedNsg;
    pub use nsg_knn::{build_exact_knn_graph, build_nn_descent, NnDescentParams};
    pub use nsg_vectors::distance::{Distance, Euclidean, InnerProduct, SquaredEuclidean};
    pub use nsg_vectors::ground_truth::exact_knn;
    pub use nsg_vectors::metrics::mean_precision;
    pub use nsg_vectors::synthetic::{base_and_queries, SyntheticKind};
    pub use nsg_vectors::VectorSet;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::Arc;

    #[test]
    fn umbrella_reexports_compose() {
        let (base, queries) = base_and_queries(SyntheticKind::RandUniform, 300, 5, 1);
        let base = Arc::new(base);
        let index = NsgIndex::build(Arc::clone(&base), SquaredEuclidean, NsgParams::default());
        let res = index.search(queries.get(0), 5, SearchQuality::new(50));
        assert_eq!(res.len(), 5);
    }
}
