//! # nsg — Navigating Spreading-out Graph, reproduced in Rust
//!
//! An end-to-end reproduction of *Fast Approximate Nearest Neighbor Search
//! With The Navigating Spreading-out Graph* (Fu, Xiang, Wang, Cai — VLDB
//! 2019): the MRNG and NSG graph indices, the shared search-on-graph routine,
//! every baseline the paper compares against, and the experiment harness that
//! regenerates each table and figure of its evaluation.
//!
//! This umbrella crate re-exports the workspace members so applications can
//! depend on a single crate:
//!
//! * [`vectors`] — dense-vector substrate (storage, distances, I/O, synthetic
//!   datasets, ground truth, metrics, LID),
//! * [`knn`] — kNN-graph construction (NN-Descent and exact),
//! * [`core`] — MRNG, NSG, search-on-graph, the query API
//!   (`SearchRequest` / `Neighbor` / `SearchContext`), graph analytics,
//!   serialization, sharded search,
//! * [`baselines`] — the compared methods (KD-trees, LSH, IVF-PQ, KGraph,
//!   Efanna, NSW, HNSW, FANNG, DPG, NSG-Naive, serial scan),
//! * [`eval`] — QPS/precision sweeps, scaling fits, report emission,
//! * [`serve`] — embedded concurrent query service: worker pool behind a
//!   bounded queue, snapshot hot-swap ([`IndexHandle`](nsg_serve::IndexHandle)),
//!   latency SLO metrics,
//! * [`obs`] — the observability layer: sharded metrics registry
//!   (counters/gauges/log-scale histograms), sampled query-path tracing
//!   ([`QueryTrace`](nsg_obs::QueryTrace)), Prometheus/JSON exporters.
//!
//! ## Quickstart
//!
//! Every index answers queries through the same three-type surface: a
//! [`SearchRequest`](nsg_core::index::SearchRequest) describes the query
//! (`k`, effort, stats opt-in), results come back as scored
//! [`Neighbor`](nsg_core::neighbor::Neighbor)s (id **and** distance), and a
//! reusable [`SearchContext`](nsg_core::context::SearchContext) makes the hot
//! loop allocation-free.
//!
//! ```
//! use nsg::prelude::*;
//! use std::sync::Arc;
//!
//! // Index 2,000 synthetic SIFT-like vectors.
//! let (base, queries) = base_and_queries(SyntheticKind::SiftLike, 2000, 10, 42);
//! let base = Arc::new(base);
//! let index = NsgIndex::build(Arc::clone(&base), SquaredEuclidean, NsgParams::default());
//!
//! // One-off convenience: a fresh context under the hood.
//! let request = SearchRequest::new(10).with_effort(100);
//! let neighbors = index.search(queries.get(0), &request);
//! assert_eq!(neighbors.len(), 10);
//! assert!(neighbors.windows(2).all(|w| w[0].dist <= w[1].dist));
//!
//! // Serving loop: reuse one context per thread — zero allocation once warm.
//! let mut ctx = index.new_context();
//! for q in 0..queries.len() {
//!     let hits = index.search_into(&mut ctx, &request.with_stats(), queries.get(q));
//!     assert_eq!(hits.len(), 10);
//!     assert!(ctx.stats().distance_computations > 0);
//! }
//!
//! // Batch path: one context per worker thread, results in query order.
//! let batch = index.search_batch(&queries, &request);
//! assert_eq!(batch.len(), queries.len());
//!
//! // Serving: a worker pool behind a bounded queue, hot-swappable index.
//! let server = Server::start(Arc::new(index), ServerConfig::with_workers(2));
//! let served = server.search_blocking(queries.get(0), &request).unwrap();
//! assert_eq!(served, neighbors);
//! println!("{}", server.metrics().snapshot());
//! server.shutdown();
//! ```
pub use nsg_baselines as baselines;
pub use nsg_core as core;
pub use nsg_eval as eval;
pub use nsg_knn as knn;
pub use nsg_obs as obs;
pub use nsg_serve as serve;
pub use nsg_vectors as vectors;

/// The most commonly used items, re-exported for `use nsg::prelude::*`.
pub mod prelude {
    pub use nsg_baselines::{
        DpgIndex, EfannaIndex, FanngIndex, HnswIndex, IvfPq, KGraphIndex, KdForest, LshIndex,
        NsgNaiveIndex, NswIndex, SerialScan,
    };
    pub use nsg_core::context::{PinnedContext, SearchContext};
    pub use nsg_core::delta::{
        CompactedPair, DeltaConfig, DeltaStats, MutableAnnIndex, MutableIndex, MutateError,
    };
    pub use nsg_core::graph::{CompactGraph, DirectedGraph, GraphView};
    pub use nsg_core::index::{AnnIndex, SearchQuality, SearchRequest};
    pub use nsg_core::neighbor::{self, Neighbor};
    pub use nsg_core::nsg::{NsgIndex, NsgParams, QuantizedNsg};
    pub use nsg_core::search::{search_on_graph, search_on_graph_into, SearchParams, SearchStats};
    pub use nsg_core::sharded::ShardedNsg;
    pub use nsg_knn::{build_exact_knn_graph, build_nn_descent, NnDescentParams};
    pub use nsg_obs::{Counter, Gauge, QueryTrace, Registry, TraceStage};
    pub use nsg_serve::{
        IndexHandle, MetricsSnapshot, MutationPolicy, ResponseSlot, ServeError, Server,
        ServerConfig, ServerMetrics,
    };
    pub use nsg_vectors::distance::{Distance, Euclidean, InnerProduct, SquaredEuclidean};
    pub use nsg_vectors::ground_truth::exact_knn;
    pub use nsg_vectors::metrics::mean_precision;
    pub use nsg_vectors::quant::Sq8VectorSet;
    pub use nsg_vectors::store::{QueryScratch, VectorStore};
    pub use nsg_vectors::synthetic::{base_and_queries, SyntheticKind};
    pub use nsg_vectors::VectorSet;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::Arc;

    #[test]
    fn umbrella_reexports_compose() {
        let (base, queries) = base_and_queries(SyntheticKind::RandUniform, 300, 5, 1);
        let base = Arc::new(base);
        let index = NsgIndex::build(Arc::clone(&base), SquaredEuclidean, NsgParams::default());
        let res = index.search(queries.get(0), &SearchRequest::new(5).with_effort(50));
        assert_eq!(res.len(), 5);
        assert!(res.windows(2).all(|w| w[0].dist <= w[1].dist));
    }
}
