//! Allocation-regression guard for the query hot path.
//!
//! The `SearchContext` contract promises that `search_into` performs **zero
//! heap allocation once the context is warm** — that is the whole point of
//! the context-reuse API, and the property the `search_on_graph` bench
//! measures. This test enforces it with a tracking global allocator: after a
//! few warm-up searches, a batch of queries through the same context must not
//! allocate at all. Counting is thread-local so the test harness's own
//! threads cannot pollute the measurement.

use nsg::prelude::*;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

thread_local! {
    static TRACKING: Cell<bool> = const { Cell::new(false) };
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

/// Process-wide tracking for the served-query guard: the allocations to
/// catch happen on the server's worker threads, which thread-local counting
/// cannot see. While the flag is up, *every* thread's allocations count —
/// which is why all tests in this binary serialize on [`GATE`].
static GLOBAL_TRACKING: AtomicBool = AtomicBool::new(false);
static GLOBAL_ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// Serializes the tests of this binary: global tracking would otherwise
/// count a concurrently running test's allocations.
static GATE: Mutex<()> = Mutex::new(());

/// Passes everything through to the system allocator, counting allocations
/// made while the current thread (or the whole process) has tracking
/// enabled.
struct CountingAllocator;

impl CountingAllocator {
    fn count(&self) {
        if TRACKING.with(|t| t.get()) {
            ALLOCATIONS.with(|c| c.set(c.get() + 1));
        }
        if GLOBAL_TRACKING.load(Ordering::Relaxed) {
            GLOBAL_ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
    }
}

// SAFETY: a pure pass-through to `System` plus side-effect-free counters;
// every GlobalAlloc contract is upheld by forwarding arguments unchanged.
unsafe impl GlobalAlloc for CountingAllocator {
    // SAFETY: caller upholds the layout contract; forwarded verbatim.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        self.count();
        // SAFETY: same layout the caller vouched for.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: caller upholds the layout/pointer contract; forwarded verbatim.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A grow in place still reserves fresh capacity: count it.
        self.count();
        // SAFETY: same pointer + layout the caller vouched for.
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    // SAFETY: caller upholds the layout/pointer contract; forwarded verbatim.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: same pointer + layout the caller vouched for.
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Runs `f` with allocation tracking enabled and returns how many heap
/// allocations it performed on this thread.
fn count_allocations(f: impl FnOnce()) -> u64 {
    ALLOCATIONS.with(|c| c.set(0));
    TRACKING.with(|t| t.set(true));
    f();
    TRACKING.with(|t| t.set(false));
    ALLOCATIONS.with(|c| c.get())
}

/// Runs `f` counting heap allocations on **every** thread of the process —
/// the form the served-query guard needs, since the search runs on a server
/// worker rather than the test thread.
fn count_allocations_global(f: impl FnOnce()) -> u64 {
    GLOBAL_ALLOCATIONS.store(0, Ordering::Relaxed);
    GLOBAL_TRACKING.store(true, Ordering::Relaxed);
    f();
    GLOBAL_TRACKING.store(false, Ordering::Relaxed);
    GLOBAL_ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn nsg_search_into_is_allocation_free_after_warmup() {
    let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
    let (base, queries) = base_and_queries(SyntheticKind::SiftLike, 1500, 40, 7);
    let base = Arc::new(base);
    let index = NsgIndex::build(
        Arc::clone(&base),
        SquaredEuclidean,
        NsgParams {
            build_pool_size: 50,
            max_degree: 24,
            knn: NnDescentParams { k: 36, ..Default::default() },
            reverse_insert: true,
            seed: 5,
        },
    );
    let request = SearchRequest::new(10).with_effort(100).with_stats();
    let mut ctx = index.new_context();

    // Warm-up: the first searches grow the pool / result buffers.
    for q in 0..4 {
        let hits = index.search_into(&mut ctx, &request, queries.get(q));
        assert_eq!(hits.len(), 10);
    }

    // Warm path: not a single heap allocation across the whole batch.
    let allocations = count_allocations(|| {
        for q in 0..queries.len() {
            let hits = index.search_into(&mut ctx, &request, queries.get(q));
            assert_eq!(hits.len(), 10);
        }
    });
    assert_eq!(
        allocations, 0,
        "search_into allocated {allocations} times across {} queries after warm-up",
        queries.len()
    );

    // The sanity half of the guard: the tracking machinery itself must see
    // the allocations of a cold-context search, or a silent tracking failure
    // would make the assertion above vacuous.
    let cold = count_allocations(|| {
        let mut fresh = index.new_context();
        let _ = index.search_into(&mut fresh, &request, queries.get(0));
    });
    assert!(cold > 0, "tracking allocator failed to observe cold-context allocations");
}

#[test]
fn traced_search_into_is_allocation_free_after_warmup() {
    // The observability form of the guard: with tracing armed for *every*
    // query (`with_trace(1)`), the recorder timestamps each Algorithm 1
    // stage into fixed in-context arrays — the warm instrumented path must
    // still not allocate, and reading the trace back must not either.
    let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
    let (base, queries) = base_and_queries(SyntheticKind::SiftLike, 1200, 40, 29);
    let base = Arc::new(base);
    let index = NsgIndex::build(
        Arc::clone(&base),
        SquaredEuclidean,
        NsgParams {
            build_pool_size: 50,
            max_degree: 24,
            knn: NnDescentParams { k: 36, ..Default::default() },
            reverse_insert: true,
            seed: 5,
        },
    );
    let request = SearchRequest::new(10).with_effort(100).with_stats().with_trace(1);
    let mut ctx = index.new_context();

    for q in 0..4 {
        let hits = index.search_into(&mut ctx, &request, queries.get(q));
        assert_eq!(hits.len(), 10);
        assert!(ctx.trace().is_some(), "every query is sampled at trace=1");
    }

    let allocations = count_allocations(|| {
        for q in 0..queries.len() {
            let hits = index.search_into(&mut ctx, &request, queries.get(q));
            assert_eq!(hits.len(), 10);
            let trace = ctx.trace().unwrap();
            assert!(trace.total_distance_computations() > 0);
        }
    });
    assert_eq!(
        allocations, 0,
        "traced search_into allocated {allocations} times across {} queries after warm-up",
        queries.len()
    );
}

#[test]
fn merged_delta_search_is_allocation_free_after_warmup() {
    // The live-mutation form of the guard: the merged query path — Algorithm
    // 1 on the frozen base, the same loop on the delta graph seeded from
    // anchors and salted random entries, the sorted merge, and
    // tombstone-filtered extraction — must be zero-allocation once warm,
    // with a non-empty delta layer AND live tombstones on both sides.
    // Mutations may allocate; the mutate-free query path must not.
    let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
    let (base, queries) = base_and_queries(SyntheticKind::SiftLike, 1500, 40, 23);
    let base = Arc::new(base);
    let index = NsgIndex::build(
        Arc::clone(&base),
        SquaredEuclidean,
        NsgParams {
            build_pool_size: 50,
            max_degree: 24,
            knn: NnDescentParams { k: 36, ..Default::default() },
            reverse_insert: true,
            seed: 5,
        },
    );
    let mutable = MutableIndex::new(index);
    // Grow a real delta layer and tombstone base and delta ids alike, so the
    // counted batch runs every phase: anchor seeding, the delta traversal,
    // the merge, and the tombstone filter.
    let extra = nsg::vectors::synthetic::uniform(120, base.dim(), 99);
    for i in 0..extra.len() {
        mutable.insert(extra.get(i)).unwrap();
    }
    for id in [3u32, 77, 500, 1400, 1501, 1555, 1600] {
        assert!(mutable.delete(id).unwrap());
    }
    let stats = mutable.delta_stats();
    assert_eq!(stats.delta_len, 120);
    assert_eq!(stats.tombstones, 7);

    let request = SearchRequest::new(10).with_effort(100).with_stats();
    let mut ctx = mutable.new_context();
    // Warm-up runs the full batch once: unlike the base-only path (whose
    // buffer sizes depend only on the search params), the merged path's
    // entry buffer grows with each query's anchor fan-out, so the high-water
    // mark is only reached after every query has been seen.
    for q in 0..queries.len() {
        let hits = mutable.search_into(&mut ctx, &request, queries.get(q));
        assert_eq!(hits.len(), 10);
    }

    let allocations = count_allocations(|| {
        for q in 0..queries.len() {
            let hits = mutable.search_into(&mut ctx, &request, queries.get(q));
            assert_eq!(hits.len(), 10);
        }
    });
    assert_eq!(
        allocations, 0,
        "merged base+delta+tombstone search_into allocated {allocations} times across {} queries after warm-up",
        queries.len()
    );

    // Sanity half: a cold context must be observed allocating, or the zero
    // above is vacuous.
    let cold = count_allocations(|| {
        let mut fresh = mutable.new_context();
        let _ = mutable.search_into(&mut fresh, &request, queries.get(0));
    });
    assert!(cold > 0, "tracking allocator failed to observe cold-context allocations");
}

#[test]
fn quantized_two_phase_search_is_allocation_free_after_warmup() {
    // The VectorStore-refactor form of the guard: traversal on SQ8 codes
    // (whose per-query preparation must reuse the context's query scratch,
    // not allocate an expanded query) followed by the exact-rerank pass
    // (which must rescore in place on the result buffer). Both phases
    // together must be zero-allocation once warm.
    let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
    let (base, queries) = base_and_queries(SyntheticKind::SiftLike, 1500, 40, 17);
    let base = Arc::new(base);
    let index = NsgIndex::build(
        Arc::clone(&base),
        SquaredEuclidean,
        NsgParams {
            build_pool_size: 50,
            max_degree: 24,
            knn: NnDescentParams { k: 36, ..Default::default() },
            reverse_insert: true,
            seed: 5,
        },
    )
    .quantize_sq8();
    let request = SearchRequest::new(10).with_effort(100).with_rerank(4).with_stats();
    let mut ctx = index.new_context();

    for q in 0..4 {
        let hits = index.search_into(&mut ctx, &request, queries.get(q));
        assert_eq!(hits.len(), 10);
    }

    let allocations = count_allocations(|| {
        for q in 0..queries.len() {
            let hits = index.search_into(&mut ctx, &request, queries.get(q));
            assert_eq!(hits.len(), 10);
        }
    });
    assert_eq!(
        allocations, 0,
        "quantized two-phase search_into allocated {allocations} times across {} queries after warm-up",
        queries.len()
    );

    // Sanity half: a cold context must be observed allocating (the query
    // scratch and pool materialize), or the zero above is vacuous.
    let cold = count_allocations(|| {
        let mut fresh = index.new_context();
        let _ = index.search_into(&mut fresh, &request, queries.get(0));
    });
    assert!(cold > 0, "tracking allocator failed to observe cold-context allocations");
}

#[test]
fn prepare_query_is_allocation_free_when_warm() {
    // The kernel-dispatch form of the guard: `prepare_query` re-resolves the
    // SIMD kernel table and (for SQ8) refills the expanded-query scratch on
    // every call, and `dist_to` runs the resolved kernels — none of which may
    // touch the heap once the scratch buffers exist. Covers both stores and
    // all three metrics so every kernel in the table is exercised.
    let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
    let (base, queries) = base_and_queries(SyntheticKind::SiftLike, 600, 8, 3);
    let sq8 = Sq8VectorSet::encode(&base);
    let mut scratch = QueryScratch::new();

    // Warm-up: size the scratch for this dimensionality under every metric.
    for q in 0..2 {
        base.prepare_query(&SquaredEuclidean, queries.get(q), &mut scratch);
        let _ = base.dist_to(&SquaredEuclidean, &scratch, q);
        sq8.prepare_query(&InnerProduct, queries.get(q), &mut scratch);
        let _ = sq8.dist_to(&InnerProduct, &scratch, q);
    }

    let allocations = count_allocations(|| {
        for q in 0..queries.len() {
            let query = queries.get(q);
            base.prepare_query(&SquaredEuclidean, query, &mut scratch);
            let a = base.dist_to(&SquaredEuclidean, &scratch, q % base.len());
            base.prepare_query(&Euclidean, query, &mut scratch);
            let b = base.dist_to(&Euclidean, &scratch, q % base.len());
            base.prepare_query(&InnerProduct, query, &mut scratch);
            let c = base.dist_to(&InnerProduct, &scratch, q % base.len());
            sq8.prepare_query(&SquaredEuclidean, query, &mut scratch);
            let d = sq8.dist_to(&SquaredEuclidean, &scratch, q % sq8.len());
            sq8.prepare_query(&Euclidean, query, &mut scratch);
            let e = sq8.dist_to(&Euclidean, &scratch, q % sq8.len());
            sq8.prepare_query(&InnerProduct, query, &mut scratch);
            let f = sq8.dist_to(&InnerProduct, &scratch, q % sq8.len());
            assert!([a, b, c, d, e, f].iter().all(|v| v.is_finite()));
        }
    });
    assert_eq!(
        allocations, 0,
        "warm prepare_query/dist_to allocated {allocations} times across {} queries",
        queries.len()
    );

    // Sanity half: a fresh scratch must be seen allocating its buffers.
    let cold = count_allocations(|| {
        let mut fresh = QueryScratch::new();
        sq8.prepare_query(&SquaredEuclidean, queries.get(0), &mut fresh);
    });
    assert!(cold > 0, "tracking allocator failed to observe cold-scratch allocations");
}

#[test]
fn raw_search_on_graph_into_is_allocation_free_after_warmup() {
    // Same guard one level down, on the shared Algorithm 1 routine every
    // graph index funnels through (the configuration the
    // `search_on_graph` bench measures).
    let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
    let (base, queries) = base_and_queries(SyntheticKind::DeepLike, 1000, 20, 11);
    let base = Arc::new(base);
    let index = NsgIndex::build(
        Arc::clone(&base),
        SquaredEuclidean,
        NsgParams {
            build_pool_size: 40,
            max_degree: 20,
            knn: NnDescentParams { k: 30, ..Default::default() },
            reverse_insert: true,
            seed: 9,
        },
    );
    let params = SearchParams::new(80, 10);
    let mut ctx = SearchContext::for_points(base.len());
    for q in 0..4 {
        search_on_graph_into(
            index.graph(),
            &base,
            queries.get(q),
            &[index.navigating_node()],
            params,
            &SquaredEuclidean,
            &mut ctx,
        );
    }
    let allocations = count_allocations(|| {
        for q in 0..queries.len() {
            let hits = search_on_graph_into(
                index.graph(),
                &base,
                queries.get(q),
                &[index.navigating_node()],
                params,
                &SquaredEuclidean,
                &mut ctx,
            );
            assert_eq!(hits.len(), 10);
        }
    });
    assert_eq!(allocations, 0, "search_on_graph_into allocated {allocations} times after warm-up");
}

#[test]
fn served_query_round_trip_is_allocation_free_after_warmup() {
    // The serving-path form of the guard: the whole round trip — submit into
    // the bounded queue, worker dequeue, snapshot load, search on the
    // worker-pinned context, response copy into the slot, wait — must not
    // allocate once everything is warm. The search runs on a server worker
    // thread, so this uses process-global counting (hence the gate).
    use nsg::serve::{ResponseSlot, Server, ServerConfig};

    let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
    let (base, queries) = base_and_queries(SyntheticKind::SiftLike, 1200, 40, 13);
    let base = Arc::new(base);
    let index = NsgIndex::build(
        Arc::clone(&base),
        SquaredEuclidean,
        NsgParams {
            build_pool_size: 40,
            max_degree: 20,
            knn: NnDescentParams { k: 30, ..Default::default() },
            reverse_insert: true,
            seed: 3,
        },
    );
    let server = Server::start(
        Arc::new(index),
        ServerConfig { workers: 2, queue_capacity: 64, max_batch: 4 },
    );
    let request = SearchRequest::new(10).with_effort(100).with_stats();
    let slot = Arc::new(ResponseSlot::new());

    // Warm-up: both workers' pinned contexts, the slot's query/result
    // buffers, and the queue's condvars all materialize here.
    for q in 0..24 {
        server.try_submit(&slot, queries.get(q % queries.len()), &request, None).unwrap();
        let response = slot.wait().unwrap();
        assert_eq!(response.neighbors().len(), 10);
    }

    // Warm path: not a single allocation anywhere in the process across a
    // full batch of served round trips.
    let allocations = count_allocations_global(|| {
        for q in 0..queries.len() {
            server.try_submit(&slot, queries.get(q), &request, None).unwrap();
            let response = slot.wait().unwrap();
            assert_eq!(response.neighbors().len(), 10);
        }
    });
    assert_eq!(
        allocations, 0,
        "served round trip allocated {allocations} times across {} queries after warm-up",
        queries.len()
    );

    // Sanity half: global tracking must observe a cold server's allocations
    // (thread spawn, queue construction, context creation), or the zero
    // above is vacuous.
    let cold = count_allocations_global(|| {
        let cold_server = Server::start(
            Arc::new(SerialScan::new((*base).clone(), SquaredEuclidean)),
            ServerConfig { workers: 1, queue_capacity: 4, max_batch: 1 },
        );
        let _ = cold_server.search_blocking(queries.get(0), &SearchRequest::new(5)).unwrap();
        cold_server.shutdown();
    });
    assert!(cold > 0, "global tracking failed to observe cold-server allocations");
    server.shutdown();
}

#[test]
fn served_query_over_a_mapped_snapshot_is_allocation_free_after_warmup() {
    // The zero-copy form of the served guard: the index behind the handle is
    // an NSG2 snapshot hot-swapped in via `swap_snapshot` — every arena a
    // borrowed view into the mapped file. Arena reads must stay branch-free
    // pointer/len loads; the whole served round trip on the mapped
    // generation must be as allocation-free as the owned one.
    use nsg::core::snapshot::write_quantized_snapshot;
    use nsg::serve::{ResponseSlot, Server, ServerConfig};

    let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
    let dir = std::env::temp_dir().join(format!("nsg_alloc_guard_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let (base, queries) = base_and_queries(SyntheticKind::SiftLike, 1200, 40, 19);
    let base = Arc::new(base);
    let index = NsgIndex::build(
        Arc::clone(&base),
        SquaredEuclidean,
        NsgParams {
            build_pool_size: 40,
            max_degree: 20,
            knn: NnDescentParams { k: 30, ..Default::default() },
            reverse_insert: true,
            seed: 31,
        },
    )
    .quantize_sq8();
    let path = dir.join("served.nsg2");
    write_quantized_snapshot(&path, &index).unwrap();

    let server = Server::start(
        Arc::new(index),
        ServerConfig { workers: 2, queue_capacity: 64, max_batch: 4 },
    );
    server.handle().swap_snapshot(&path).expect("snapshot must swap in");
    assert_eq!(server.handle().generation(), 1);
    let request = SearchRequest::new(10).with_effort(100).with_rerank(4).with_stats();
    let slot = Arc::new(ResponseSlot::new());

    // Warm-up on the mapped generation: worker contexts re-size for the
    // swapped index, slot buffers materialize.
    for q in 0..24 {
        server.try_submit(&slot, queries.get(q % queries.len()), &request, None).unwrap();
        let response = slot.wait().unwrap();
        assert_eq!(response.generation(), 1, "query served off the pre-swap generation");
        assert_eq!(response.neighbors().len(), 10);
    }

    let allocations = count_allocations_global(|| {
        for q in 0..queries.len() {
            server.try_submit(&slot, queries.get(q), &request, None).unwrap();
            let response = slot.wait().unwrap();
            assert_eq!(response.neighbors().len(), 10);
        }
    });
    assert_eq!(
        allocations, 0,
        "mapped-snapshot served round trip allocated {allocations} times across {} queries after warm-up",
        queries.len()
    );
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
