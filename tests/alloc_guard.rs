//! Allocation-regression guard for the query hot path.
//!
//! The `SearchContext` contract promises that `search_into` performs **zero
//! heap allocation once the context is warm** — that is the whole point of
//! the context-reuse API, and the property the `search_on_graph` bench
//! measures. This test enforces it with a tracking global allocator: after a
//! few warm-up searches, a batch of queries through the same context must not
//! allocate at all. Counting is thread-local so the test harness's own
//! threads cannot pollute the measurement.

use nsg::prelude::*;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::Arc;

thread_local! {
    static TRACKING: Cell<bool> = const { Cell::new(false) };
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

/// Passes everything through to the system allocator, counting allocations
/// made while the current thread has tracking enabled.
struct CountingAllocator;

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if TRACKING.with(|t| t.get()) {
            ALLOCATIONS.with(|c| c.set(c.get() + 1));
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A grow in place still reserves fresh capacity: count it.
        if TRACKING.with(|t| t.get()) {
            ALLOCATIONS.with(|c| c.set(c.get() + 1));
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Runs `f` with allocation tracking enabled and returns how many heap
/// allocations it performed on this thread.
fn count_allocations(f: impl FnOnce()) -> u64 {
    ALLOCATIONS.with(|c| c.set(0));
    TRACKING.with(|t| t.set(true));
    f();
    TRACKING.with(|t| t.set(false));
    ALLOCATIONS.with(|c| c.get())
}

#[test]
fn nsg_search_into_is_allocation_free_after_warmup() {
    let (base, queries) = base_and_queries(SyntheticKind::SiftLike, 1500, 40, 7);
    let base = Arc::new(base);
    let index = NsgIndex::build(
        Arc::clone(&base),
        SquaredEuclidean,
        NsgParams {
            build_pool_size: 50,
            max_degree: 24,
            knn: NnDescentParams { k: 36, ..Default::default() },
            reverse_insert: true,
            seed: 5,
        },
    );
    let request = SearchRequest::new(10).with_effort(100).with_stats();
    let mut ctx = index.new_context();

    // Warm-up: the first searches grow the pool / result buffers.
    for q in 0..4 {
        let hits = index.search_into(&mut ctx, &request, queries.get(q));
        assert_eq!(hits.len(), 10);
    }

    // Warm path: not a single heap allocation across the whole batch.
    let allocations = count_allocations(|| {
        for q in 0..queries.len() {
            let hits = index.search_into(&mut ctx, &request, queries.get(q));
            assert_eq!(hits.len(), 10);
        }
    });
    assert_eq!(
        allocations, 0,
        "search_into allocated {allocations} times across {} queries after warm-up",
        queries.len()
    );

    // The sanity half of the guard: the tracking machinery itself must see
    // the allocations of a cold-context search, or a silent tracking failure
    // would make the assertion above vacuous.
    let cold = count_allocations(|| {
        let mut fresh = index.new_context();
        let _ = index.search_into(&mut fresh, &request, queries.get(0));
    });
    assert!(cold > 0, "tracking allocator failed to observe cold-context allocations");
}

#[test]
fn raw_search_on_graph_into_is_allocation_free_after_warmup() {
    // Same guard one level down, on the shared Algorithm 1 routine every
    // graph index funnels through (the configuration the
    // `search_on_graph` bench measures).
    let (base, queries) = base_and_queries(SyntheticKind::DeepLike, 1000, 20, 11);
    let base = Arc::new(base);
    let index = NsgIndex::build(
        Arc::clone(&base),
        SquaredEuclidean,
        NsgParams {
            build_pool_size: 40,
            max_degree: 20,
            knn: NnDescentParams { k: 30, ..Default::default() },
            reverse_insert: true,
            seed: 9,
        },
    );
    let params = SearchParams::new(80, 10);
    let mut ctx = SearchContext::for_points(base.len());
    for q in 0..4 {
        search_on_graph_into(
            index.graph(),
            &base,
            queries.get(q),
            &[index.navigating_node()],
            params,
            &SquaredEuclidean,
            &mut ctx,
        );
    }
    let allocations = count_allocations(|| {
        for q in 0..queries.len() {
            let hits = search_on_graph_into(
                index.graph(),
                &base,
                queries.get(q),
                &[index.navigating_node()],
                params,
                &SquaredEuclidean,
                &mut ctx,
            );
            assert_eq!(hits.len(), 10);
        }
    });
    assert_eq!(allocations, 0, "search_on_graph_into allocated {allocations} times after warm-up");
}
