//! Cross-crate integration tests: the full NSG pipeline (synthetic data →
//! NN-Descent → Algorithm 2 → search → precision) and its interaction with
//! serialization and sharding.

use nsg::core::serialize::{graph_from_bytes, graph_to_bytes, load_graph, save_graph};
use nsg::core::stats::reachable_count;
use nsg::knn::NnDescentParams;
use nsg::prelude::*;
use std::sync::Arc;

fn batch_ids(index: &dyn AnnIndex, queries: &VectorSet, request: &SearchRequest) -> Vec<Vec<u32>> {
    index.search_batch(queries, request).iter().map(|r| neighbor::ids(r)).collect()
}

fn test_params() -> NsgParams {
    NsgParams {
        build_pool_size: 50,
        max_degree: 24,
        knn: NnDescentParams { k: 36, ..Default::default() },
        reverse_insert: true,
        seed: 9,
    }
}

#[test]
fn full_pipeline_reaches_high_precision_on_every_dataset_kind() {
    // The 128-d uniform / Gaussian stand-ins are the paper's hard, high-LID
    // datasets (RAND4M LID≈49, GAUSS5M LID≈48): every ANNS method degrades on
    // them (Fig. 6), so their precision bar is lower than the descriptor-like
    // datasets'.
    for (i, (kind, threshold)) in [
        (SyntheticKind::SiftLike, 0.85),
        (SyntheticKind::RandUniform, 0.70),
        (SyntheticKind::Gauss, 0.70),
        (SyntheticKind::DeepLike, 0.80),
        (SyntheticKind::EcommerceLike, 0.85),
    ]
    .into_iter()
    .enumerate()
    {
        let (base, queries) = base_and_queries(kind, 1500, 20, 100 + i as u64);
        let base = Arc::new(base);
        let gt = exact_knn(&base, &queries, 10, &SquaredEuclidean);
        let index = NsgIndex::build(Arc::clone(&base), SquaredEuclidean, test_params());
        let results = batch_ids(&index, &queries, &SearchRequest::new(10).with_effort(300));
        let precision = mean_precision(&results, &gt, 10);
        assert!(
            precision > threshold,
            "{kind:?}: end-to-end precision {precision} below threshold {threshold}"
        );
        // Connectivity guarantee of Algorithm 2 step iv.
        assert_eq!(
            reachable_count(index.graph(), index.navigating_node()),
            base.len(),
            "{kind:?}: navigating node cannot reach every node"
        );
    }
}

#[test]
fn serialized_index_answers_identically_after_reload() {
    let (base, queries) = base_and_queries(SyntheticKind::SiftLike, 1000, 10, 77);
    let base = Arc::new(base);
    let index = NsgIndex::build(Arc::clone(&base), SquaredEuclidean, test_params());

    let bytes = graph_to_bytes(index.graph(), index.navigating_node()).expect("encodable graph");
    let (graph, nav) = graph_from_bytes(&bytes).expect("valid serialized graph");
    let reloaded = NsgIndex::from_parts(Arc::clone(&base), SquaredEuclidean, graph, nav, *index.params());

    let request = SearchRequest::new(10).with_effort(100);
    for q in 0..queries.len() {
        let a = index.search(queries.get(q), &request);
        let b = reloaded.search(queries.get(q), &request);
        assert_eq!(a, b, "query {q} differs after the serialization round-trip");
    }
}

#[test]
fn on_disk_persistence_roundtrip_reproduces_identical_neighbors() {
    // Full persistence cycle: build -> save_graph -> load_graph -> from_parts
    // must reproduce bit-identical scored `Neighbor` answers on 50 queries.
    let (base, queries) = base_and_queries(SyntheticKind::DeepLike, 1200, 50, 99);
    assert_eq!(queries.len(), 50);
    let base = Arc::new(base);
    let index = NsgIndex::build(Arc::clone(&base), SquaredEuclidean, test_params());

    let dir = std::env::temp_dir().join(format!("nsg_persist_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("index.nsg");
    save_graph(&path, index.graph(), index.navigating_node()).expect("save");
    let (graph, nav) = load_graph(&path).expect("load");
    assert_eq!(&graph, index.graph());
    assert_eq!(nav, index.navigating_node());
    let reloaded = NsgIndex::from_parts(Arc::clone(&base), SquaredEuclidean, graph, nav, *index.params());

    // Compare through reused contexts on both sides — the serving path.
    let request = SearchRequest::new(10).with_effort(120).with_stats();
    let mut ctx_a = index.new_context();
    let mut ctx_b = reloaded.new_context();
    for q in 0..queries.len() {
        let a: Vec<Neighbor> = index.search_into(&mut ctx_a, &request, queries.get(q)).to_vec();
        let b: Vec<Neighbor> = reloaded.search_into(&mut ctx_b, &request, queries.get(q)).to_vec();
        assert_eq!(a, b, "query {q} differs after the on-disk round-trip");
        assert_eq!(
            ctx_a.stats(),
            ctx_b.stats(),
            "query {q} search cost differs after the on-disk round-trip"
        );
        assert!(a.windows(2).all(|w| Neighbor::ordering(&w[0], &w[1]).is_le()));
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sharded_and_flat_nsg_agree_on_easy_queries() {
    let (base, _) = base_and_queries(SyntheticKind::DeepLike, 1800, 1, 55);
    let flat_base = Arc::new(base.clone());
    let flat = NsgIndex::build(Arc::clone(&flat_base), SquaredEuclidean, test_params());
    let sharded = ShardedNsg::build(&base, SquaredEuclidean, test_params(), 3, 5);

    // Self-queries: both must return the query point itself first.
    let request = SearchRequest::new(1).with_effort(80);
    let mut agree = 0;
    let total = 20;
    for v in (0..base.len()).step_by(base.len() / total) {
        let a = flat.search(base.get(v), &request);
        let b = sharded.search(base.get(v), &request);
        if a == b {
            agree += 1;
        }
    }
    assert!(agree >= total - 2, "flat and sharded NSG disagree on {}/{total} self-queries", total - agree);
}

#[test]
fn every_algorithm_implements_the_common_index_interface() {
    use nsg::baselines::{
        DpgParams, EfannaParams, FanngParams, HnswParams, IvfPqParams, KGraphParams, KdForestParams,
        LshParams, NsgNaiveParams, NswParams,
    };

    let (base, queries) = base_and_queries(SyntheticKind::SiftLike, 800, 5, 31);
    let base = Arc::new(base);
    let gt = exact_knn(&base, &queries, 5, &SquaredEuclidean);

    let indices: Vec<Box<dyn AnnIndex>> = vec![
        Box::new(NsgIndex::build(Arc::clone(&base), SquaredEuclidean, test_params())),
        Box::new(HnswIndex::build(Arc::clone(&base), SquaredEuclidean, HnswParams::default())),
        Box::new(KGraphIndex::build(Arc::clone(&base), SquaredEuclidean, KGraphParams::default())),
        Box::new(EfannaIndex::build(Arc::clone(&base), SquaredEuclidean, EfannaParams::default())),
        Box::new(DpgIndex::build(Arc::clone(&base), SquaredEuclidean, DpgParams::default())),
        Box::new(FanngIndex::build(Arc::clone(&base), SquaredEuclidean, FanngParams::default())),
        Box::new(NsgNaiveIndex::build(Arc::clone(&base), SquaredEuclidean, NsgNaiveParams::default())),
        Box::new(NswIndex::build(Arc::clone(&base), SquaredEuclidean, NswParams::default())),
        Box::new(KdForest::build(Arc::clone(&base), SquaredEuclidean, KdForestParams::default())),
        Box::new(LshIndex::build(Arc::clone(&base), SquaredEuclidean, LshParams::default())),
        Box::new(IvfPq::build(Arc::clone(&base), SquaredEuclidean, IvfPqParams { rerank: 200, ..Default::default() })),
        Box::new(SerialScan::new((*base).clone(), SquaredEuclidean)),
    ];

    let request = SearchRequest::new(5).with_effort(400);
    for index in &indices {
        let batch = index.search_batch(&queries, &request);
        for (q, r) in batch.iter().enumerate() {
            assert!(
                r.len() <= 5 && !r.is_empty(),
                "{}: query {q} returned {} neighbors",
                index.name(),
                r.len()
            );
            assert!(
                r.iter().all(|nb| (nb.id as usize) < base.len()),
                "{}: id out of range",
                index.name()
            );
            assert!(
                r.windows(2).all(|w| w[0].dist <= w[1].dist),
                "{}: query {q} results not sorted by distance",
                index.name()
            );
        }
        let results: Vec<Vec<u32>> = batch.iter().map(|r| neighbor::ids(r)).collect();
        let precision = mean_precision(&results, &gt, 5);
        assert!(
            precision > 0.5,
            "{}: precision {precision} is implausibly low at effort 400 on 800 points",
            index.name()
        );
        assert!(index.memory_bytes() > 0 || index.name() == "dummy");
    }
}

#[test]
fn fvecs_roundtrip_feeds_the_indexing_pipeline() {
    // Write a synthetic dataset in the BIGANN fvecs format, read it back, and
    // index the reloaded copy — the drop-in path for the real datasets.
    let (base, queries) = base_and_queries(SyntheticKind::SiftLike, 600, 5, 3);
    let dir = std::env::temp_dir().join(format!("nsg_e2e_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("base.fvecs");
    nsg::vectors::io::write_fvecs(&path, &base).unwrap();
    let reloaded = nsg::vectors::io::read_fvecs(&path).unwrap();
    assert_eq!(reloaded, base);

    let base = Arc::new(reloaded);
    let gt = exact_knn(&base, &queries, 5, &SquaredEuclidean);
    let index = NsgIndex::build(Arc::clone(&base), SquaredEuclidean, test_params());
    let results = batch_ids(&index, &queries, &SearchRequest::new(5).with_effort(100));
    assert!(mean_precision(&results, &gt, 5) > 0.8);
    std::fs::remove_dir_all(&dir).ok();
}
