//! The static-analysis gate: runs `nsg-lint` over the entire workspace
//! checkout, so `cargo test` *is* the R1–R7 invariant check. CI's dedicated
//! `lint-gate` step runs the same engine through the binary; they can never
//! disagree.

use std::path::Path;

/// Ceiling on `lint:allow` suppressions. Growth past this means the rules no
/// longer describe the codebase and need a re-anchor, not more escapes.
const MAX_ALLOWS: usize = 15;

#[test]
fn workspace_has_zero_lint_violations() {
    // CARGO_MANIFEST_DIR of the umbrella crate is the workspace root.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = nsg_lint::lint_workspace(root).expect("workspace walk succeeds");
    assert!(report.files_scanned > 50, "gate walked only {} files — wrong root?", report.files_scanned);

    for f in &report.findings {
        eprintln!("{f}");
    }
    assert!(
        report.findings.is_empty(),
        "{} lint violation(s) — run `cargo run -p nsg-lint -- --workspace` for details",
        report.findings.len()
    );

    for (path, allow) in &report.allows {
        assert!(
            !allow.reason.is_empty(),
            "{path}:{}: lint:allow without a reason",
            allow.comment_line
        );
    }
    assert!(
        report.allows.len() <= MAX_ALLOWS,
        "{} suppressions exceed the budget of {MAX_ALLOWS} — fix violations instead of allowing them",
        report.allows.len()
    );
}
