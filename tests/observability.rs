//! End-to-end observability: sampled query-path tracing on the base and
//! merged (live-mutation) search paths, build-pipeline counters landing in
//! the global registry, and the serve-side registry rendering Prometheus
//! text exposition.

use nsg::prelude::*;
use std::sync::Arc;

fn build_small_index(seed: u64) -> (Arc<VectorSet>, VectorSet, NsgIndex<SquaredEuclidean>) {
    let (base, queries) = base_and_queries(SyntheticKind::SiftLike, 1000, 20, seed);
    let base = Arc::new(base);
    let index = NsgIndex::build(
        Arc::clone(&base),
        SquaredEuclidean,
        NsgParams {
            build_pool_size: 40,
            max_degree: 20,
            knn: NnDescentParams { k: 30, ..Default::default() },
            reverse_insert: true,
            seed: 11,
        },
    );
    (base, queries, index)
}

#[test]
fn base_search_samples_one_query_in_n() {
    let (_base, queries, index) = build_small_index(41);
    let request = SearchRequest::new(10).with_effort(80).with_stats().with_trace(3);
    let mut ctx = index.new_context();
    let mut sampled = 0;
    for q in 0..9 {
        let hits = index.search_into(&mut ctx, &request, queries.get(q % queries.len()));
        assert_eq!(hits.len(), 10);
        if let Some(trace) = ctx.trace() {
            sampled += 1;
            // A base-only query touches seeding and the base traversal…
            let seed = trace.stage(TraceStage::EntrySeeding);
            let traversal = trace.stage(TraceStage::BaseTraversal);
            assert!(seed.distance_computations > 0, "entry seeding scored the entry point");
            assert!(traversal.distance_computations > 0, "traversal expanded candidates");
            assert_eq!(
                seed.distance_computations + traversal.distance_computations,
                ctx.stats().distance_computations,
                "traced stages account for every distance computation"
            );
            // …and none of the delta/merge/rerank stages.
            for stage in [
                TraceStage::DeltaTraversal,
                TraceStage::SortedMerge,
                TraceStage::TombstoneFilter,
                TraceStage::ExactRerank,
            ] {
                assert_eq!(trace.stage(stage).distance_computations, 0);
            }
        }
    }
    assert_eq!(sampled, 3, "1-in-3 sampling over 9 queries traces exactly 3");
    // trace = 0 (the default) never samples.
    let untraced = SearchRequest::new(10).with_effort(80);
    let _ = index.search_into(&mut ctx, &untraced, queries.get(0));
    assert!(ctx.trace().is_none());
}

#[test]
fn quantized_rerank_shows_up_as_its_own_stage() {
    let (_base, queries, index) = build_small_index(43);
    let quantized = index.quantize_sq8();
    let request = SearchRequest::new(10).with_effort(80).with_rerank(4).with_stats().with_trace(1);
    let mut ctx = quantized.new_context();
    let _ = quantized.search_into(&mut ctx, &request, queries.get(0));
    let trace = ctx.trace().expect("every query sampled at trace=1");
    let rerank = trace.stage(TraceStage::ExactRerank);
    assert!(rerank.distance_computations > 0, "exact rerank rescored candidates");
    assert!(
        trace.stage(TraceStage::BaseTraversal).distance_computations
            > rerank.distance_computations,
        "the traversal dominates the rerank tail"
    );
}

#[test]
fn merged_delta_search_traces_the_delta_stages() {
    let (base, queries, index) = build_small_index(47);
    let mutable = MutableIndex::new(index);
    let extra = nsg::vectors::synthetic::uniform(80, base.dim(), 3);
    for i in 0..extra.len() {
        mutable.insert(extra.get(i)).unwrap();
    }
    for id in [5u32, 100, 900] {
        assert!(mutable.delete(id).unwrap());
    }
    let request =
        SearchRequest::new(10).with_effort(80).with_rerank(2).with_stats().with_trace(1);
    let mut ctx = mutable.new_context();
    let _ = mutable.search_into(&mut ctx, &request, queries.get(0));
    let trace = ctx.trace().expect("every query sampled at trace=1");
    assert!(trace.stage(TraceStage::EntrySeeding).distance_computations > 0);
    assert!(trace.stage(TraceStage::BaseTraversal).distance_computations > 0);
    assert!(
        trace.stage(TraceStage::DeltaTraversal).distance_computations > 0,
        "the delta pass ran and was attributed separately"
    );
    assert!(
        trace.stage(TraceStage::ExactRerank).distance_computations > 0,
        "the merged path rescores delta candidates exactly"
    );
    assert!(trace.total_nanos() > 0);
}

#[test]
fn build_pipeline_publishes_phase_counters_to_the_global_registry() {
    let (_base, _queries, _index) = build_small_index(53);
    let obs = nsg::obs::global();
    for name in [
        "nsg_build_nn_descent_rounds",
        "nsg_build_nn_descent_nanos",
        "nsg_build_medoid_nanos",
        "nsg_build_select_nanos",
        "nsg_build_reverse_insert_nanos",
        "nsg_build_repair_nanos",
        "nsg_build_freeze_nanos",
    ] {
        assert!(obs.counter(name).get() > 0, "{name} not published by the build");
    }
    assert!(obs.gauge("nsg_build_edges").get() > 0.0);
    // The scrape includes them in valid exposition format.
    let prom = obs.render_prometheus();
    assert!(prom.contains("# TYPE nsg_build_select_nanos counter"));
}

#[test]
fn server_registry_scrapes_queue_and_latency_instruments() {
    let (_base, queries, index) = build_small_index(59);
    let server = Server::start(Arc::new(index), ServerConfig::with_workers(2));
    let request = SearchRequest::new(10).with_effort(80).with_stats();
    for q in 0..queries.len() {
        let hits = server.search_blocking(queries.get(q), &request).unwrap();
        assert_eq!(hits.len(), 10);
    }
    let metrics = server.metrics();
    let snapshot = metrics.snapshot();
    assert_eq!(snapshot.completed, queries.len() as u64);
    assert_eq!(metrics.completed(), snapshot.completed);
    let registry = metrics.registry();
    assert_eq!(registry.counter("serve_completed").get(), snapshot.completed);
    assert_eq!(registry.histogram("serve_latency").count(), snapshot.completed);
    assert_eq!(registry.histogram("serve_queue_wait").count(), snapshot.completed);
    assert!(registry.histogram("serve_batch_size").count() > 0);
    assert!(registry.histogram("serve_batch_size").sum() >= snapshot.completed);
    let prom = registry.render_prometheus();
    for needle in [
        "# TYPE serve_completed counter",
        "# TYPE serve_latency histogram",
        "# TYPE serve_queue_wait histogram",
        "# TYPE serve_queue_depth gauge",
        "serve_latency_bucket{le=\"+Inf\"}",
    ] {
        assert!(prom.contains(needle), "missing {needle:?} in:\n{prom}");
    }
    let json = registry.snapshot_json();
    assert!(json.contains("\"serve_latency\""));
    server.shutdown();
}
