//! Property-based tests (proptest) of the core invariants: the MRNG's
//! monotonicity (Theorem 3), the MRNG ⊇ NNG containment (Figure 4's
//! requirement), pruning subsets, candidate-pool ordering, and metric/format
//! round-trips under arbitrary inputs.

use nsg::core::mrng::{build_mrng, has_monotonic_path, mrng_select, MrngParams};
use nsg::core::neighbor::CandidatePool;
use nsg::prelude::*;
use proptest::prelude::*;

/// Strategy: a small random point set of dimension 2–4 with 4–40 points.
fn point_set() -> impl Strategy<Value = VectorSet> {
    (2usize..5, 4usize..40).prop_flat_map(|(dim, n)| {
        proptest::collection::vec(proptest::collection::vec(-100.0f32..100.0, dim), n)
            .prop_map(move |rows| VectorSet::from_rows(dim, &rows))
    })
}

/// Strategy: arbitrary directed-graph adjacency on 1–40 nodes (duplicate
/// edges and self-loops permitted, as the mutable build structure allows).
fn adjacency() -> impl Strategy<Value = Vec<Vec<u32>>> {
    (1usize..40).prop_flat_map(|n| {
        proptest::collection::vec(proptest::collection::vec(0u32..n as u32, 0usize..12), n)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Theorem 3: the exact MRNG has a monotonic path between every ordered
    /// pair of nodes.
    #[test]
    fn mrng_is_always_a_monotonic_search_network(base in point_set()) {
        let g = build_mrng(&base, MrngParams::default(), &SquaredEuclidean);
        let n = base.len() as u32;
        for p in 0..n {
            for q in 0..n {
                prop_assert!(
                    has_monotonic_path(&g, &base, p, q, &SquaredEuclidean),
                    "no monotonic path {p} -> {q}"
                );
            }
        }
    }

    /// NNG ⊆ MRNG: every node keeps an edge to (one of) its nearest
    /// neighbors; without it the graph cannot be monotonic (Figure 4).
    #[test]
    fn mrng_contains_a_nearest_neighbor_edge(base in point_set()) {
        let g = build_mrng(&base, MrngParams::default(), &SquaredEuclidean);
        for p in 0..base.len() {
            let mut best = f32::INFINITY;
            for q in 0..base.len() {
                if q != p {
                    best = best.min(SquaredEuclidean.distance(base.get(p), base.get(q)));
                }
            }
            let has_nn_edge = g.neighbors(p as u32).iter().any(|&u| {
                (SquaredEuclidean.distance(base.get(p), base.get(u as usize)) - best).abs() <= f32::EPSILON * best.max(1.0)
            });
            prop_assert!(has_nn_edge, "node {p} lost every nearest-neighbor edge");
        }
    }

    /// The MRNG pruning returns a subset of its candidates, in order, without
    /// duplicates, and never exceeds the degree cap.
    #[test]
    fn mrng_select_returns_a_bounded_subset(
        base in point_set(),
        cap in 1usize..8,
    ) {
        let node = base.get(0).to_vec();
        let mut candidates: Vec<Neighbor> = (1..base.len() as u32)
            .map(|q| Neighbor::new(q, SquaredEuclidean.distance(&node, base.get(q as usize))))
            .collect();
        candidates.sort_by(Neighbor::ordering);
        let selected = mrng_select(&base, &node, &candidates, cap, &SquaredEuclidean);
        prop_assert!(selected.len() <= cap);
        let candidate_ids: Vec<u32> = candidates.iter().map(|c| c.id).collect();
        let mut seen = std::collections::HashSet::new();
        for id in &selected {
            prop_assert!(candidate_ids.contains(id));
            prop_assert!(seen.insert(*id), "duplicate id {id} selected");
        }
        if !candidates.is_empty() {
            // The closest candidate always survives.
            prop_assert_eq!(selected.first().copied(), Some(candidates[0].id));
        }
    }

    /// The candidate pool of Algorithm 1 always stays sorted, bounded and
    /// duplicate-free regardless of the insertion order.
    ///
    /// `insert`'s contract requires each id to always be offered with the same
    /// distance (distances are a pure function of the node), so the random
    /// `(id, dist)` stream is canonicalized to the first distance drawn per id
    /// — repeats still exercise the duplicate-rejection path.
    #[test]
    fn candidate_pool_invariants(
        capacity in 1usize..16,
        inserts in proptest::collection::vec((0u32..64, 0.0f32..1000.0), 0..128),
    ) {
        let mut dist_of: std::collections::HashMap<u32, f32> = std::collections::HashMap::new();
        let mut pool = CandidatePool::new(capacity);
        for (id, dist) in inserts {
            let dist = *dist_of.entry(id).or_insert(dist);
            pool.insert(id, dist);
            prop_assert!(pool.len() <= capacity);
            let entries = pool.entries();
            for w in entries.windows(2) {
                prop_assert!(w[0].dist <= w[1].dist, "pool out of order");
            }
            let mut ids: Vec<u32> = entries.iter().map(|e| e.id).collect();
            ids.sort_unstable();
            ids.dedup();
            prop_assert_eq!(ids.len(), entries.len(), "duplicate id in pool");
        }
    }

    /// Precision is always within [0, 1] and equals 1 exactly when the answer
    /// covers the ground truth.
    #[test]
    fn precision_is_bounded(
        returned in proptest::collection::vec(0u32..50, 0..20),
        exact in proptest::collection::vec(0u32..50, 1..20),
    ) {
        let mut exact = exact;
        exact.sort_unstable();
        exact.dedup();
        let p = nsg::vectors::metrics::precision_at_k(&returned, &exact);
        prop_assert!((0.0..=1.0).contains(&p));
        let full = nsg::vectors::metrics::precision_at_k(&exact, &exact);
        prop_assert!((full - 1.0).abs() < 1e-12);
    }

    /// Freezing a build-time graph into the CSR `CompactGraph` preserves the
    /// whole adjacency observable through `GraphView`: per-node neighbor
    /// lists (order included), out-degrees, and the edge count.
    #[test]
    fn compact_graph_freeze_preserves_adjacency(lists in adjacency()) {
        let nested = DirectedGraph::from_adjacency(lists);
        let frozen = CompactGraph::from(&nested);
        prop_assert_eq!(frozen.num_nodes(), nested.num_nodes());
        prop_assert_eq!(frozen.num_edges(), nested.num_edges());
        prop_assert_eq!(frozen.max_out_degree(), nested.max_out_degree());
        for v in 0..nested.num_nodes() as u32 {
            prop_assert_eq!(frozen.neighbors(v), nested.neighbors(v), "node {} list differs", v);
            prop_assert_eq!(frozen.out_degree(v), nested.out_degree(v), "node {} degree differs", v);
        }
        // Thawing gets the original back exactly.
        prop_assert_eq!(frozen.to_directed(), nested);
    }

    /// Serialization through the CSR path is byte-identical to the original
    /// nested-`Vec` on-disk format: same magic, same header, same per-node
    /// records — files written before the frozen-graph refactor stay
    /// readable, and both representations encode the same stream.
    #[test]
    fn csr_serialization_is_byte_identical_to_the_legacy_format(
        lists in adjacency(),
        nav_pick in 0usize..40,
    ) {
        use nsg::core::serialize::{graph_from_bytes, graph_to_bytes};

        let nested = DirectedGraph::from_adjacency(lists.clone());
        let frozen = CompactGraph::from(&nested);
        let nav = (nav_pick % nested.num_nodes()) as u32;

        // The legacy encoder, spelled out: magic "NSG1", navigating node,
        // node count, then per node a u32 degree + the neighbor ids, all LE.
        let mut legacy: Vec<u8> = Vec::new();
        legacy.extend_from_slice(&0x4E53_4731u32.to_le_bytes());
        legacy.extend_from_slice(&nav.to_le_bytes());
        legacy.extend_from_slice(&(lists.len() as u32).to_le_bytes());
        for list in &lists {
            legacy.extend_from_slice(&(list.len() as u32).to_le_bytes());
            for &u in list {
                legacy.extend_from_slice(&u.to_le_bytes());
            }
        }

        let from_frozen = graph_to_bytes(&frozen, nav).unwrap();
        let from_nested = graph_to_bytes(&nested, nav).unwrap();
        prop_assert_eq!(&from_frozen[..], &legacy[..], "CSR encoder diverged from the legacy bytes");
        prop_assert_eq!(&from_nested[..], &legacy[..], "nested encoder diverged from the legacy bytes");

        // A legacy file decodes into the same frozen graph + navigating node.
        let (decoded, decoded_nav) = graph_from_bytes(&legacy).unwrap();
        prop_assert_eq!(&decoded, &frozen);
        prop_assert_eq!(decoded_nav, nav);
    }

    /// SQ8 quantization error is within the per-dimension bound: rounding to
    /// the nearest of 256 affine levels can miss a coordinate by at most half
    /// a step (`scaleᵢ / 2`), plus float rounding noise.
    #[test]
    fn sq8_encode_decode_error_is_within_the_quantization_bound(base in point_set()) {
        let store = Sq8VectorSet::encode(&base);
        prop_assert_eq!(store.len(), base.len());
        prop_assert_eq!(store.dim(), base.dim());
        for i in 0..base.len() {
            let decoded = store.decode(i);
            for (d, ((&x, &y), &s)) in base.get(i).iter().zip(&decoded).zip(store.scales()).enumerate() {
                let bound = s / 2.0 + 1e-4 * x.abs().max(1.0);
                prop_assert!(
                    (x - y).abs() <= bound,
                    "vector {} dim {}: |{} - {}| exceeds half-step bound {}", i, d, x, y, bound
                );
            }
        }
    }

    /// The asymmetric SQ8 kernel agrees with decode-then-exact-distance, and
    /// the store round-trips byte-exactly through the NSQ8 section.
    #[test]
    fn sq8_kernel_matches_decode_and_serialization_is_byte_exact(base in point_set()) {
        use nsg::core::serialize::{sq8_from_bytes, sq8_to_bytes};
        use nsg::vectors::store::{QueryScratch, VectorStore};

        let store = Sq8VectorSet::encode(&base);
        let query = base.get(0).to_vec();
        let mut scratch = QueryScratch::new();
        store.prepare_query(&SquaredEuclidean, &query, &mut scratch);
        for i in 0..store.len() {
            let fast = store.dist_to(&SquaredEuclidean, &scratch, i);
            let slow = SquaredEuclidean.distance(&query, &store.decode(i));
            prop_assert!(
                (fast - slow).abs() <= 1e-3 * slow.max(1.0),
                "vector {}: kernel {} vs decoded {}", i, fast, slow
            );
        }

        let bytes = sq8_to_bytes(&store).unwrap();
        let back = sq8_from_bytes(&bytes).unwrap();
        prop_assert_eq!(&back, &store);
        prop_assert_eq!(sq8_to_bytes(&back).unwrap(), bytes);
    }

    /// fvecs serialization round-trips arbitrary finite vector sets.
    #[test]
    fn fvecs_roundtrip(base in point_set()) {
        let mut buf = Vec::new();
        nsg::vectors::io::write_fvecs_to(&mut buf, &base).unwrap();
        let back = nsg::vectors::io::read_fvecs_from(std::io::Cursor::new(buf)).unwrap();
        prop_assert_eq!(back, base);
    }

    /// With an empty delta layer and no tombstones, the mutable wrapper's
    /// merged search takes the frozen fast path: every query returns results
    /// **byte-identical** (same ids, same distance bit patterns) to the
    /// frozen index it wraps — wrapping a serving index in [`MutableIndex`]
    /// before any mutation arrives changes nothing observable.
    #[test]
    fn empty_delta_mutable_search_is_byte_identical_to_frozen(base in point_set()) {
        let params = NsgParams {
            build_pool_size: 16,
            max_degree: 8,
            knn: NnDescentParams { k: 8, ..Default::default() },
            reverse_insert: true,
            seed: 5,
        };
        let frozen = NsgIndex::build(std::sync::Arc::new(base.clone()), SquaredEuclidean, params);
        let request = SearchRequest::new(5).with_effort(24);
        let mut ctx = frozen.new_context();
        let expected: Vec<Vec<Neighbor>> = (0..base.len())
            .map(|q| frozen.search_into(&mut ctx, &request, base.get(q)).to_vec())
            .collect();
        let mutable = MutableIndex::new(frozen);
        prop_assert_eq!(mutable.delta_stats().delta_len, 0);
        prop_assert_eq!(mutable.delta_stats().tombstones, 0);
        let mut ctx = mutable.new_context();
        for (q, exp) in expected.iter().enumerate() {
            let got = mutable.search_into(&mut ctx, &request, base.get(q));
            prop_assert_eq!(got.len(), exp.len(), "query {}", q);
            for (i, (g, e)) in got.iter().zip(exp).enumerate() {
                prop_assert_eq!(g.id, e.id, "query {} rank {}", q, i);
                prop_assert_eq!(g.dist.to_bits(), e.dist.to_bits(), "query {} rank {}", q, i);
            }
        }
    }

    /// Exact k-NN ground truth is symmetric in the metric: the reported
    /// distances match recomputation and are sorted.
    #[test]
    fn ground_truth_distances_are_consistent(base in point_set()) {
        let query = base.get(0).to_vec();
        let (ids, dists) = nsg::vectors::ground_truth::exact_knn_single(&base, &query, 5, &SquaredEuclidean);
        for (id, d) in ids.iter().zip(&dists) {
            let recomputed = SquaredEuclidean.distance(&query, base.get(*id as usize));
            prop_assert!((recomputed - d).abs() <= 1e-3 * d.max(1.0));
        }
        for w in dists.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
    }
}
