//! Quantization smoke suite (the named `quantization-smoke` CI step).
//!
//! End-to-end checks of the SQ8 + two-phase-search pipeline at the umbrella
//! level: encode → search → rerank quality on clustered data, the full
//! serialized round trip back into a working [`QuantizedNsg`], and the
//! corrupt-input rejection bar.

use nsg::core::nsg::QuantizedNsg;
use nsg::core::serialize::{
    quantized_index_from_bytes, quantized_index_to_bytes, SerializeError,
};
use nsg::prelude::*;
use nsg::vectors::store::VectorStore;
use std::sync::Arc;

fn build_params() -> NsgParams {
    NsgParams {
        build_pool_size: 50,
        max_degree: 24,
        knn: NnDescentParams { k: 36, ..Default::default() },
        reverse_insert: true,
        seed: 7,
    }
}

#[test]
fn two_phase_search_recovers_f32_recall_on_clustered_data() {
    let (base, queries) = base_and_queries(SyntheticKind::SiftLike, 2000, 40, 3);
    let base = Arc::new(base);
    let gt = exact_knn(&base, &queries, 10, &SquaredEuclidean);
    let flat = NsgIndex::build(Arc::clone(&base), SquaredEuclidean, build_params());

    let request = SearchRequest::new(10).with_effort(120);
    let flat_results: Vec<Vec<u32>> = flat
        .search_batch(&queries, &request)
        .iter()
        .map(|r| neighbor::ids(r))
        .collect();
    let flat_recall = mean_precision(&flat_results, &gt, 10);

    let quantized = flat.quantize_sq8();
    // Memory acceptance: codes + affine parameters within 30% of flat bytes.
    let sq8_bytes = quantized.store().as_ref().memory_bytes();
    assert!(
        (sq8_bytes as f64) <= base.memory_bytes() as f64 * 0.30,
        "SQ8 store {sq8_bytes} bytes exceeds 30% of flat {}",
        base.memory_bytes()
    );

    // A generous rerank factor recovers ≥ 99% of the f32 recall@10.
    let two_phase: Vec<Vec<u32>> = quantized
        .search_batch(&queries, &request.with_rerank(4))
        .iter()
        .map(|r| neighbor::ids(r))
        .collect();
    let recall = mean_precision(&two_phase, &gt, 10);
    assert!(
        recall >= flat_recall * 0.99,
        "two-phase recall {recall} fell below 99% of the f32 recall {flat_recall}"
    );
}

#[test]
fn quantized_index_round_trips_through_bytes_into_identical_answers() {
    let (base, queries) = base_and_queries(SyntheticKind::DeepLike, 1200, 25, 9);
    let base = Arc::new(base);
    let index = NsgIndex::build(Arc::clone(&base), SquaredEuclidean, build_params()).quantize_sq8();
    let request = SearchRequest::new(10).with_effort(80).with_rerank(3).with_stats();

    let bytes = quantized_index_to_bytes(index.graph(), index.navigating_node(), index.store()).unwrap();
    let (graph, nav, store) = quantized_index_from_bytes(&bytes).unwrap();
    // Byte-exact round trip.
    assert_eq!(quantized_index_to_bytes(&graph, nav, &store).unwrap(), bytes);

    let restored: QuantizedNsg<SquaredEuclidean> = NsgIndex::from_store_parts(
        Arc::new(store),
        Arc::clone(&base),
        SquaredEuclidean,
        graph,
        nav,
        *index.params(),
    );
    let mut ctx_a = index.new_context();
    let mut ctx_b = restored.new_context();
    for q in 0..queries.len() {
        let a = index.search_into(&mut ctx_a, &request, queries.get(q)).to_vec();
        let stats_a = ctx_a.stats();
        let b = restored.search_into(&mut ctx_b, &request, queries.get(q)).to_vec();
        assert_eq!(a, b, "query {q} differs after the serialized round trip");
        assert_eq!(stats_a, ctx_b.stats(), "query {q} cost differs after the round trip");
    }
}

#[test]
fn corrupt_quantized_streams_are_rejected_before_allocation() {
    let base = Arc::new(nsg::vectors::synthetic::uniform(100, 8, 5));
    let index = NsgIndex::build(Arc::clone(&base), SquaredEuclidean, build_params()).quantize_sq8();
    let good = quantized_index_to_bytes(index.graph(), index.navigating_node(), index.store())
        .unwrap()
        .to_vec();

    // Truncations anywhere in the stream fail cleanly.
    for cut in [0, 4, good.len() / 2, good.len() - 1] {
        assert!(
            quantized_index_from_bytes(&good[..cut]).is_err(),
            "truncation at {cut} bytes not detected"
        );
    }
    // Flipped magic of the SQ8 section (right after the graph section).
    let graph_len = nsg::core::serialize::graph_to_bytes(index.graph(), 0).unwrap().len();
    let mut bad = good.clone();
    bad[graph_len] ^= 0xFF;
    assert!(matches!(
        quantized_index_from_bytes(&bad),
        Err(SerializeError::Corrupt(_))
    ));
    // Overstated vector count in the SQ8 header must be rejected by
    // comparison against the bytes present — never by attempting the
    // header-sized allocation.
    let mut overstated = good.clone();
    let n_at = graph_len + 8;
    overstated[n_at..n_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(matches!(
        quantized_index_from_bytes(&overstated),
        Err(SerializeError::Corrupt(_))
    ));
}
