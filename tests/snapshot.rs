//! Zero-copy snapshot invariants, end to end through the umbrella crate.
//!
//! The NSG2 contract is *representation independence*: whether the serving
//! arenas are owned `Vec`s or borrowed views into a mapped file must be
//! unobservable — same `Neighbor` slices bit for bit, same `SearchStats` —
//! for both the flat and the quantized (two-phase rerank) query paths, on
//! both the real `mmap(2)` mapping and the portable aligned-copy fallback.
//! Corrupt and truncated files must come back as `SerializeError`, never a
//! panic, at the same bounded-decode bar as the streaming formats.

use nsg::core::serialize::SerializeError;
use nsg::core::snapshot::{
    snapshot_to_bytes, write_quantized_snapshot, write_snapshot, Snapshot,
};
use nsg::prelude::*;
use nsg_vectors::DistanceKind;
use proptest::prelude::*;
use std::sync::Arc;

fn params(seed: u64) -> NsgParams {
    NsgParams {
        build_pool_size: 16,
        max_degree: 8,
        knn: NnDescentParams { k: 8, ..Default::default() },
        reverse_insert: true,
        seed,
    }
}

/// Strategy: a small random point set of dimension 2–6 with 8–60 points.
fn point_set() -> impl Strategy<Value = VectorSet> {
    (2usize..7, 8usize..60).prop_flat_map(|(dim, n)| {
        proptest::collection::vec(proptest::collection::vec(-100.0f32..100.0, dim), n)
            .prop_map(move |rows| VectorSet::from_rows(dim, &rows))
    })
}

/// Bit-exact comparison of two answers plus their search statistics.
fn assert_identical(
    tag: &str,
    got: &[Neighbor],
    got_stats: SearchStats,
    want: &[Neighbor],
    want_stats: SearchStats,
) {
    assert_eq!(got.len(), want.len(), "{tag}: answer lengths differ");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(g.id, w.id, "{tag}: rank {i} id differs");
        assert_eq!(g.dist.to_bits(), w.dist.to_bits(), "{tag}: rank {i} distance bits differ");
    }
    assert_eq!(got_stats, want_stats, "{tag}: search statistics differ");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Flat path: a snapshot opened over an aligned region answers every
    /// query byte-identically to the owned index it was written from,
    /// statistics included.
    #[test]
    fn mapped_flat_search_is_byte_identical_to_owned(base in point_set()) {
        let base = Arc::new(base);
        let owned = NsgIndex::build(Arc::clone(&base), SquaredEuclidean, params(7));
        let bytes = snapshot_to_bytes(
            owned.graph(),
            owned.navigating_node(),
            owned.base(),
            DistanceKind::SquaredEuclidean,
            None,
        ).unwrap();
        let mapped = Snapshot::from_bytes(&bytes).unwrap().into_index(NsgParams::default());
        let request = SearchRequest::new(5).with_effort(24).with_stats();
        let mut owned_ctx = owned.new_context();
        let mut mapped_ctx = mapped.new_context();
        for q in 0..base.len() {
            let want = owned.search_into(&mut owned_ctx, &request, base.get(q)).to_vec();
            let want_stats = owned_ctx.stats();
            let got = mapped.search_into(&mut mapped_ctx, &request, base.get(q)).to_vec();
            assert_identical(&format!("flat query {q}"), &got, mapped_ctx.stats(), &want, want_stats);
        }
    }

    /// Quantized path: the two-phase (SQ8 traversal + exact rerank) answers
    /// off the mapped snapshot match the owned quantized index bit for bit.
    #[test]
    fn mapped_quantized_search_is_byte_identical_to_owned(base in point_set()) {
        let base = Arc::new(base);
        let owned = NsgIndex::build(Arc::clone(&base), SquaredEuclidean, params(9)).quantize_sq8();
        let bytes = snapshot_to_bytes(
            owned.graph(),
            owned.navigating_node(),
            owned.base(),
            DistanceKind::SquaredEuclidean,
            Some(owned.store()),
        ).unwrap();
        let snap = Snapshot::from_bytes(&bytes).unwrap();
        prop_assert!(snap.sq8().is_some(), "quantized snapshot lost its SQ8 store");
        let mapped = snap.into_index(NsgParams::default());
        let request = SearchRequest::new(5).with_effort(24).with_rerank(3).with_stats();
        let mut owned_ctx = owned.new_context();
        let mut mapped_ctx = mapped.new_context();
        for q in 0..base.len() {
            let want = owned.search_into(&mut owned_ctx, &request, base.get(q)).to_vec();
            let want_stats = owned_ctx.stats();
            let got = mapped.search_into(&mut mapped_ctx, &request, base.get(q)).to_vec();
            assert_identical(&format!("quantized query {q}"), &got, mapped_ctx.stats(), &want, want_stats);
        }
    }

    /// Flipping any single byte of the header or section table either fails
    /// with `SerializeError` or opens a snapshot equivalent to the original —
    /// never a panic (reserved fields are legitimately ignored).
    #[test]
    fn corrupting_the_table_never_panics(base in point_set(), pos in 0usize..200, flip in 1u8..255) {
        let base = Arc::new(base);
        let owned = NsgIndex::build(Arc::clone(&base), SquaredEuclidean, params(3));
        let bytes = snapshot_to_bytes(
            owned.graph(),
            owned.navigating_node(),
            owned.base(),
            DistanceKind::SquaredEuclidean,
            None,
        ).unwrap();
        let mut bad = bytes.to_vec();
        let pos = pos % bad.len();
        bad[pos] ^= flip;
        match Snapshot::from_bytes(&bad) {
            Err(SerializeError::Corrupt(_)) => {}
            Err(other) => prop_assert!(false, "unexpected error kind: {other:?}"),
            Ok(snap) => {
                // Flip landed in a reserved field, padding, or a payload the
                // table cannot vouch for; the deep check or a search must
                // still be panic-free.
                if snap.verify().is_ok() {
                    let index = snap.into_index(NsgParams::default());
                    let mut ctx = index.new_context();
                    let _ = index.search_into(&mut ctx, &SearchRequest::new(3).with_effort(16), base.get(0));
                }
            }
        }
    }

    /// Every truncation of a valid snapshot is rejected cleanly (except cuts
    /// confined to the trailing zero padding, which leave a valid file).
    #[test]
    fn truncations_never_panic(base in point_set(), keep_per_mille in 0usize..1000) {
        let base = Arc::new(base);
        let owned = NsgIndex::build(Arc::clone(&base), SquaredEuclidean, params(4));
        let bytes = snapshot_to_bytes(
            owned.graph(),
            owned.navigating_node(),
            owned.base(),
            DistanceKind::SquaredEuclidean,
            None,
        ).unwrap();
        let cut = bytes.len() * keep_per_mille / 1000;
        let _ = Snapshot::from_bytes(&bytes[..cut]);
    }
}

/// The real `mmap(2)` path and the portable read-into-aligned-buffer fallback
/// serve byte-identical answers for the same file.
#[test]
fn mapped_and_fallback_opens_are_interchangeable() {
    let dir = std::env::temp_dir().join(format!("nsg_snapshot_test_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let base = Arc::new(nsg::vectors::synthetic::uniform(400, 8, 21));
    let owned = NsgIndex::build(Arc::clone(&base), SquaredEuclidean, params(21)).quantize_sq8();
    let path = dir.join("interchange.nsg2");
    write_quantized_snapshot(&path, &owned).unwrap();

    let mapped = Snapshot::open(&path).unwrap();
    let fallback = Snapshot::open_unmapped(&path).unwrap();
    assert!(!fallback.is_mapped(), "open_unmapped must use the copy fallback");
    let mapped = mapped.into_index(NsgParams::default());
    let fallback = fallback.into_index(NsgParams::default());
    let request = SearchRequest::new(5).with_effort(40).with_rerank(3).with_stats();
    let mut mapped_ctx = mapped.new_context();
    let mut fallback_ctx = fallback.new_context();
    let mut owned_ctx = owned.new_context();
    for q in 0..50 {
        let want = owned.search_into(&mut owned_ctx, &request, base.get(q)).to_vec();
        let want_stats = owned_ctx.stats();
        let got = mapped.search_into(&mut mapped_ctx, &request, base.get(q)).to_vec();
        assert_identical(&format!("mmap query {q}"), &got, mapped_ctx.stats(), &want, want_stats);
        let got = fallback.search_into(&mut fallback_ctx, &request, base.get(q)).to_vec();
        assert_identical(&format!("fallback query {q}"), &got, fallback_ctx.stats(), &want, want_stats);
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// A snapshot file round-trips through disk: write, open, verify, and the
/// deep check passes; deleting the file underneath a live mapping is safe.
#[test]
fn snapshot_survives_file_deletion_while_mapped() {
    let dir = std::env::temp_dir().join(format!("nsg_snapshot_del_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let base = Arc::new(nsg::vectors::synthetic::uniform(300, 6, 33));
    let owned = NsgIndex::build(Arc::clone(&base), SquaredEuclidean, params(33));
    let path = dir.join("unlinked.nsg2");
    write_snapshot(&path, &owned).unwrap();

    let snap = Snapshot::open(&path).unwrap();
    snap.verify().unwrap();
    let index = snap.into_index(NsgParams::default());
    std::fs::remove_file(&path).unwrap();
    // The mapping (or fallback copy) keeps the data alive past the unlink.
    let request = SearchRequest::new(5).with_effort(30);
    let mut ctx = index.new_context();
    let mut owned_ctx = owned.new_context();
    for q in 0..20 {
        assert_eq!(
            index.search_into(&mut ctx, &request, base.get(q)),
            owned.search_into(&mut owned_ctx, &request, base.get(q)),
            "query {q} diverged after unlink"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}
